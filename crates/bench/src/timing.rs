//! A minimal micro-benchmark driver for the `benches/` targets.
//!
//! Each bench target is a plain `harness = false` binary: it builds a
//! [`Bench`] from its command line and registers closures. Run normally
//! (`cargo bench`), each closure is auto-calibrated to a measurable
//! iteration count and its per-iteration time printed; run with `--test`
//! (as `scripts/check.sh` does), every closure executes exactly once so
//! the benches are smoke-tested without paying measurement time.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement time the calibration loop aims for per benchmark.
const TARGET: Duration = Duration::from_millis(50);
/// Upper bound on the iteration count, for degenerate sub-ns closures.
const MAX_ITERS: u64 = 1 << 24;

/// The benchmark driver: registers and times named closures.
#[derive(Debug)]
pub struct Bench {
    test_only: bool,
}

impl Bench {
    /// Builds a driver from the process arguments; `--test` switches to
    /// single-iteration smoke mode (other flags are ignored).
    pub fn from_args() -> Self {
        Self {
            test_only: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Times `f`, doubling the iteration count until the measurement
    /// window is long enough, and prints ns/iteration.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if self.test_only || elapsed >= TARGET || iters >= MAX_ITERS {
                report(name, elapsed, iters, self.test_only);
                return;
            }
            iters *= 2;
        }
    }

    /// Like [`bench`](Self::bench) but rebuilds fresh state via `setup`
    /// before every iteration, timing only `routine`.
    pub fn bench_batched<S>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S),
    ) {
        let mut iters = 1u64;
        loop {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let state = setup();
                let start = Instant::now();
                routine(state);
                elapsed += start.elapsed();
            }
            if self.test_only || elapsed >= TARGET || iters >= MAX_ITERS {
                report(name, elapsed, iters, self.test_only);
                return;
            }
            iters *= 2;
        }
    }
}

fn report(name: &str, elapsed: Duration, iters: u64, test_only: bool) {
    if test_only {
        println!("{name:<44} ok (smoke)");
    } else {
        let per_iter = elapsed.as_nanos() as f64 / iters as f64;
        println!("{name:<44} {per_iter:>14.1} ns/iter  ({iters} iters)");
    }
}

/// One per-event-type row of the loop-profile baseline written to
/// `BENCH_loop.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopRow {
    /// Event-loop handler label (e.g. `redirect`, `placement`).
    pub label: String,
    /// Events dispatched with this label over the profiled run.
    pub count: u64,
    /// Mean handler wall time per dispatch, in nanoseconds.
    pub mean_ns: f64,
    /// Slowest single dispatch, in nanoseconds.
    pub max_ns: u64,
}

/// Serializes the loop-profile baseline as the `BENCH_loop.json`
/// document: the generating configuration plus one object per handler
/// label with `count`/`mean_ns`/`max_ns`.
///
/// The JSON is hand-rolled (this workspace takes no external
/// dependencies) and emitted with keys in a fixed order so successive
/// baselines diff cleanly.
pub fn loop_baseline_json(config: &[(&str, String)], rows: &[LoopRow]) -> String {
    let mut out = String::from("{\n  \"config\": {");
    for (i, (key, value)) in config.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{key}\": {value}"));
    }
    out.push_str("},\n  \"handlers\": {\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}}}",
            row.label, row.count, row.mean_ns, row.max_ns
        ));
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_baseline_json_is_well_formed() {
        let rows = vec![
            LoopRow {
                label: "placement".into(),
                count: 26,
                mean_ns: 5220.4,
                max_ns: 51650,
            },
            LoopRow {
                label: "redirect".into(),
                count: 398,
                mean_ns: 3340.0,
                max_ns: 33760,
            },
        ];
        let json = loop_baseline_json(&[("seed", "42".into()), ("objects", "64".into())], &rows);
        assert!(json.contains("\"seed\": 42"), "{json}");
        assert!(json.contains("\"redirect\": {\"count\": 398"), "{json}");
        assert!(json.contains("\"mean_ns\": 5220.4"), "{json}");
        // Balanced braces and a trailing newline keep the file friendly
        // to line-oriented diffing.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn loop_baseline_json_handles_empty_rows() {
        let json = loop_baseline_json(&[], &[]);
        assert!(json.contains("\"handlers\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
