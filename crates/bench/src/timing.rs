//! A minimal micro-benchmark driver for the `benches/` targets.
//!
//! Each bench target is a plain `harness = false` binary: it builds a
//! [`Bench`] from its command line and registers closures. Run normally
//! (`cargo bench`), each closure is auto-calibrated to a measurable
//! iteration count and its per-iteration time printed; run with `--test`
//! (as `scripts/check.sh` does), every closure executes exactly once so
//! the benches are smoke-tested without paying measurement time.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement time the calibration loop aims for per benchmark.
const TARGET: Duration = Duration::from_millis(50);
/// Upper bound on the iteration count, for degenerate sub-ns closures.
const MAX_ITERS: u64 = 1 << 24;

/// The benchmark driver: registers and times named closures.
#[derive(Debug)]
pub struct Bench {
    test_only: bool,
}

impl Bench {
    /// Builds a driver from the process arguments; `--test` switches to
    /// single-iteration smoke mode (other flags are ignored).
    pub fn from_args() -> Self {
        Self {
            test_only: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Times `f`, doubling the iteration count until the measurement
    /// window is long enough, and prints ns/iteration.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if self.test_only || elapsed >= TARGET || iters >= MAX_ITERS {
                report(name, elapsed, iters, self.test_only);
                return;
            }
            iters *= 2;
        }
    }

    /// Like [`bench`](Self::bench) but rebuilds fresh state via `setup`
    /// before every iteration, timing only `routine`.
    pub fn bench_batched<S>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S),
    ) {
        let mut iters = 1u64;
        loop {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let state = setup();
                let start = Instant::now();
                routine(state);
                elapsed += start.elapsed();
            }
            if self.test_only || elapsed >= TARGET || iters >= MAX_ITERS {
                report(name, elapsed, iters, self.test_only);
                return;
            }
            iters *= 2;
        }
    }
}

fn report(name: &str, elapsed: Duration, iters: u64, test_only: bool) {
    if test_only {
        println!("{name:<44} ok (smoke)");
    } else {
        let per_iter = elapsed.as_nanos() as f64 / iters as f64;
        println!("{name:<44} {per_iter:>14.1} ns/iter  ({iters} iters)");
    }
}
