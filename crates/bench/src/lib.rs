//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! The `experiments` binary (`cargo run --release -p radar-bench --bin
//! experiments -- all`) drives the functions in [`experiments`]; each
//! reproduces one artifact of the paper's §6 on the UUNET testbed:
//!
//! | Command | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — simulation parameters |
//! | `fig6` | Fig. 6 — bandwidth and latency vs. time, four workloads |
//! | `fig7` | Fig. 7 — relocation overhead as % of total traffic |
//! | `fig8a` | Fig. 8a — maximum host load vs. time |
//! | `fig8b` | Fig. 8b — actual load vs. upper/lower estimates |
//! | `table2` | Table 2 — adjustment time and average replicas |
//! | `fig9` | Fig. 9 — the high-load configuration |
//! | `baselines` | §1/§3 — round-robin / closest / random comparison |
//! | `ablation-constant` | §6.1 — distribution-constant sweep |
//! | `ablation-thresholds` | §6.1 — deletion/replication threshold sweep |
//! | `ablation-period` | §6.1 — placement-period sweep |
//! | `demand-shift` | §1 — responsiveness to a demand change |
//! | `updates` | §5 — update-propagation cost vs replica caps |
//! | `policies` | §4/§5 — placement policies × consistency mixes (`BENCH_policies.json`) |
//! | `redirectors` | §2 — hash-partitioned redirector sweep |
//! | `heterogeneous` | §2 — weighted (heterogeneous) hosts |
//! | `links` | per-link traffic: where the reduction lands |
//! | `storage` | §4 — per-host storage-pressure sweep |
//! | `variance` | Table 2 metrics as mean ± sd over seeds |
//! | `faults` | availability under injected host/link faults |
//!
//! Every experiment is a pure function of an [`ExpConfig`]; the tests run
//! them at [`ExpConfig::tiny`] scale, the binary at [`ExpConfig::full`]
//! (the paper's Table 1 scale) or [`ExpConfig::quick`].

// `deny` rather than `forbid`: the counting allocator in [`timing`] is
// the workspace's one sanctioned `unsafe` item (a `GlobalAlloc` impl
// must be `unsafe`), scoped by an explicit `allow` at the impl.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod timing;

/// Run the library's own tests under the counting allocator so the
/// allocation-budget tests in [`timing`] observe real allocator
/// traffic. Delegates to the system allocator, so every other test is
/// unaffected.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: timing::CountingAlloc = timing::CountingAlloc;

use std::fmt::Write as _;
use std::path::PathBuf;

use radar_core::ObjectId;
use radar_sim::{PlacementMode, RunReport, Scenario, ScenarioBuilder, Simulation};
use radar_simcore::SimRng;
use radar_simnet::NodeId;
use radar_workload::{HotPages, HotSites, Regional, Workload, ZipfReeds};

/// The four paper workloads, in the order the paper reports them.
pub const WORKLOADS: [&str; 4] = ["hot-sites", "hot-pages", "zipf", "regional"];

/// Scale and output settings shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Number of hosted objects (paper: 10 000).
    pub num_objects: u32,
    /// Per-gateway request rate (paper: 40 req/s).
    pub node_rate: f64,
    /// Simulated duration (seconds).
    pub duration: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Directory for CSV series output (`None` = don't write files).
    pub out_dir: Option<PathBuf>,
}

impl ExpConfig {
    /// The paper's full Table 1 scale.
    pub fn full() -> Self {
        Self {
            num_objects: 10_000,
            node_rate: 40.0,
            duration: 3_000.0,
            seed: 1,
            out_dir: None,
        }
    }

    /// Reduced scale for fast smoke runs (~4× fewer events).
    pub fn quick() -> Self {
        Self {
            num_objects: 2_000,
            node_rate: 40.0,
            duration: 1_600.0,
            seed: 1,
            out_dir: None,
        }
    }

    /// Miniature scale for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_objects: 400,
            node_rate: 4.0,
            duration: 400.0,
            seed: 1,
            out_dir: None,
        }
    }

    /// The baseline scenario for this scale (dynamic placement, normal
    /// watermarks).
    pub fn scenario(&self) -> ScenarioBuilder {
        Scenario::builder()
            .num_objects(self.num_objects)
            .node_request_rate(self.node_rate)
            .duration(self.duration)
            .seed(self.seed)
    }
}

/// Instantiates one of the paper's workloads by name over `num_objects`
/// objects on the 53-node UUNET testbed.
///
/// # Panics
///
/// Panics on an unknown workload name.
pub fn make_workload(name: &str, num_objects: u32, seed: u64) -> Box<dyn Workload + Send> {
    // Workload structure (which sites/pages are hot) comes from its own
    // seed stream so it is identical across policy/placement variants.
    let mut rng = SimRng::seed_from(seed ^ 0x9E37_79B9_7F4A_7C15);
    match name {
        "zipf" => Box::new(ZipfReeds::new(num_objects)),
        "hot-sites" => Box::new(HotSites::new(num_objects, 53, 0.1, 0.9, &mut rng)),
        "hot-pages" => Box::new(HotPages::new(num_objects, 0.1, 0.9, &mut rng)),
        "regional" => {
            let topo = radar_simnet::builders::uunet();
            Box::new(Regional::new(num_objects, &topo, 0.01, 0.9))
        }
        other => panic!("unknown workload {other:?}"),
    }
}

/// Runs one dynamic-placement simulation of `workload` at this scale.
pub fn run_dynamic(cfg: &ExpConfig, workload: &str) -> RunReport {
    let scenario = cfg.scenario().build().expect("valid scenario");
    Simulation::new(scenario, make_workload(workload, cfg.num_objects, cfg.seed)).run()
}

/// Runs the static baseline (no placement decisions) of `workload`.
pub fn run_static(cfg: &ExpConfig, workload: &str) -> RunReport {
    let scenario = cfg
        .scenario()
        .placement(PlacementMode::Static)
        .build()
        .expect("valid scenario");
    Simulation::new(scenario, make_workload(workload, cfg.num_objects, cfg.seed)).run()
}

/// The paper's §3 swamped-server scenario: one gateway's clients hammer
/// a small set of objects co-located with that gateway, while everyone
/// else browses uniformly. Under closest-replica routing the co-located
/// server can never shed this load, "no matter how many additional
/// replicas the server creates"; RaDaR's distribution algorithm sheds it.
#[derive(Debug, Clone)]
pub struct LocalSwamp {
    num_objects: u32,
    hot_gateway: NodeId,
    hot_objects: u32,
    hot_prob: f64,
}

impl LocalSwamp {
    /// Demand from `hot_gateway` goes to objects `0..hot_objects` (which
    /// the swamp scenario places on that same node) with probability
    /// `hot_prob`; all other requests are uniform.
    ///
    /// # Panics
    ///
    /// Panics if `hot_objects` is zero or exceeds `num_objects`.
    pub fn new(num_objects: u32, hot_gateway: NodeId, hot_objects: u32, hot_prob: f64) -> Self {
        assert!(
            hot_objects > 0 && hot_objects <= num_objects,
            "hot set must be a non-empty subset of the object space"
        );
        Self {
            num_objects,
            hot_gateway,
            hot_objects,
            hot_prob,
        }
    }
}

impl Workload for LocalSwamp {
    fn choose(&mut self, _now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        if gateway == self.hot_gateway && rng.chance(self.hot_prob) {
            ObjectId::new(rng.index(self.hot_objects as usize) as u32)
        } else {
            ObjectId::new(rng.index(self.num_objects as usize) as u32)
        }
    }

    fn name(&self) -> &str {
        "local-swamp"
    }
}

/// Formats a fixed-width table: header row plus data rows.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
        }
        out.pop();
        out.pop();
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Writes a CSV file under `cfg.out_dir`, if configured. Errors are
/// reported to stderr, never fatal — a missing results directory must
/// not kill a 10-minute experiment run.
pub fn write_csv(cfg: &ExpConfig, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let Some(dir) = &cfg.out_dir else { return };
    let path = dir.join(format!("{name}.csv"));
    let mut body = headers.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Formats bytes×hops/second as MB·hops/s.
pub fn fmt_bw(bytes_hops_per_sec: f64) -> String {
    format!("{:.2}", bytes_hops_per_sec / 1e6)
}

/// Formats seconds as milliseconds.
pub fn fmt_ms(secs: f64) -> String {
    format!("{:.1}", secs * 1e3)
}

/// Percentage change from `from` to `to` (negative = reduction), as a
/// display string.
pub fn fmt_change(from: f64, to: f64) -> String {
    if from == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (to - from) / from * 100.0)
}

/// Percentage reduction from `from` to `to` (positive = improvement).
pub fn reduction_percent(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (from - to) / from * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_factory_covers_paper_names() {
        for name in WORKLOADS {
            let w = make_workload(name, 500, 3);
            assert_eq!(w.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = make_workload("nope", 10, 1);
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["a", "bbb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["10".into(), "200000".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbb"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bw(2_500_000.0), "2.50");
        assert_eq!(fmt_ms(0.25), "250.0");
        assert_eq!(fmt_change(100.0, 90.0), "-10.0%");
        assert_eq!(fmt_change(0.0, 5.0), "n/a");
        assert_eq!(reduction_percent(100.0, 25.0), 75.0);
        assert_eq!(reduction_percent(0.0, 25.0), 0.0);
    }

    #[test]
    fn csv_written_when_dir_set() {
        let dir = std::env::temp_dir().join("radar-bench-test-csv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ExpConfig::tiny();
        cfg.out_dir = Some(dir.clone());
        write_csv(&cfg, "t", &["x", "y"], &[vec!["1".into(), "2".into()]]);
        let body = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(body, "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_skipped_without_dir() {
        let cfg = ExpConfig::tiny();
        // Must not panic or create anything.
        write_csv(&cfg, "t", &["x"], &[]);
    }
}
