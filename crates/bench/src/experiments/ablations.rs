//! Baseline comparisons, parameter ablations, and the demand-shift
//! responsiveness experiment.

use std::fmt::Write as _;

use radar_baselines::{ClosestSelection, RandomSelection, RoundRobinSelection};
use radar_core::Params;
use radar_sim::{InitialPlacement, RunReport, SelectionPolicy, Simulation};
use radar_simnet::NodeId;
use radar_stats::EquilibriumSpec;
use radar_workload::DemandShift;

use crate::{fmt_bw, fmt_ms, format_table, make_workload, write_csv, LocalSwamp};

use super::Harness;

/// §1/§3 comparison: the protocol's request distribution against
/// round-robin, closest-replica, and random selection — all running the
/// same dynamic placement — plus the fully static configuration.
pub fn baselines(h: &mut Harness) -> String {
    let workload = "hot-sites";
    let mut out = format!(
        "== Baselines: request distribution policies under dynamic placement ({workload}) ==\n"
    );
    let mut rows = Vec::new();
    let run_policy = |h: &mut Harness, policy: Box<dyn SelectionPolicy + Send>| -> RunReport {
        eprintln!("  [sim] policy   {}", policy.name());
        let scenario = h.cfg.scenario().build().expect("valid scenario");
        Simulation::with_selection(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
            policy,
        )
        .run()
    };
    let radar = h.dynamic(workload).clone();
    let reports: Vec<RunReport> = vec![
        radar,
        run_policy(h, Box::new(RoundRobinSelection::new())),
        run_policy(h, Box::new(ClosestSelection::new())),
        run_policy(h, Box::new(RandomSelection::new(h.cfg.seed))),
        h.static_run(workload).clone(),
    ];
    for r in &reports {
        let label = if r.dynamic_placement {
            r.policy.clone()
        } else {
            format!("{} (static)", r.policy)
        };
        // Peak over the final quarter: the settled regime.
        let warmup = r.max_load.len() * 3 / 4;
        rows.push(vec![
            label,
            fmt_bw(r.equilibrium_bandwidth_rate()),
            fmt_ms(r.equilibrium_latency()),
            format!("{:.1}", r.peak_load_after(warmup)),
            format!("{:.2}", r.equilibrium_avg_replicas()),
            r.relocations().to_string(),
        ]);
    }
    let headers = [
        "policy",
        "eq bw (MB·hops/s)",
        "eq lat (ms)",
        "peak load (final quarter)",
        "avg replicas",
        "relocations",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "baselines", &headers, &rows);
    out.push_str(
        "\nExpected shape (paper §3): round-robin/random ignore proximity (high\n\
         bandwidth); the protocol serves nearby while spreading load.\n",
    );
    out.push_str(&swamp_comparison(h));
    out
}

/// The paper's §3 swamped-server example, run head-to-head: one
/// gateway's clients overload the co-located server. Closest-replica
/// routing can never shed that load; RaDaR's distribution algorithm can.
fn swamp_comparison(h: &mut Harness) -> String {
    // 160 req/s of locally concentrated demand: far above the 90 req/s
    // high watermark but below the 200 req/s hard capacity, so queues
    // stay bounded (the paper chose capacity ≫ hw for the same reason:
    // "a backlog of messages is not representative of the real world").
    let mut out = String::from(
        "\n-- §3 swamped server: one gateway drives 160 req/s at objects on its own node --\n",
    );
    let hot_gateway = 5u16; // Los Angeles
    let hot_objects = 40u32;
    let num_objects = h.cfg.num_objects.max(hot_objects);
    let mut rows = Vec::new();
    let policies: Vec<Box<dyn SelectionPolicy + Send>> = vec![
        Box::new(radar_sim::RadarSelection::new()),
        Box::new(ClosestSelection::new()),
        Box::new(RoundRobinSelection::new()),
    ];
    for policy in policies {
        eprintln!("  [sim] swamp    {}", policy.name());
        let mut rates = vec![20.0; 53];
        rates[hot_gateway as usize] = 160.0;
        // The hot objects live on the swamped gateway's own node.
        let mut placement: Vec<Vec<u16>> =
            (0..num_objects).map(|i| vec![(i % 53) as u16]).collect();
        for assignment in placement.iter_mut().take(hot_objects as usize) {
            *assignment = vec![hot_gateway];
        }
        let scenario = h
            .cfg
            .scenario()
            .num_objects(num_objects)
            .node_request_rates(rates)
            .initial_placement(InitialPlacement::Explicit(placement))
            .tracked_host(hot_gateway)
            .build()
            .expect("valid scenario");
        let name = policy.name().to_string();
        let r = Simulation::with_selection(
            scenario,
            Box::new(LocalSwamp::new(
                num_objects,
                NodeId::new(hot_gateway),
                hot_objects,
                0.95,
            )),
            policy,
        )
        .run();
        // Swamped node's load over the final quarter of samples.
        let tail = r.load_estimates.len() * 3 / 4;
        let final_load = r.load_estimates[tail..]
            .iter()
            .map(|s| s.actual)
            .fold(0.0f64, f64::max);
        rows.push(vec![
            name,
            format!("{final_load:.1}"),
            fmt_ms(r.equilibrium_latency()),
            format!("{:.2}", r.equilibrium_avg_replicas()),
        ]);
    }
    let headers = [
        "policy",
        "swamped node load (req/s, final)",
        "eq lat (ms)",
        "avg replicas",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "baselines_swamp", &headers, &rows);
    out.push_str(
        "\n(closest keeps the swamped node at capacity no matter how many replicas\n\
         exist; RaDaR sheds the local overload — the paper's central §3 claim)\n",
    );
    out
}

/// Sweep of the request-distribution constant (the \"2\" in Fig. 2).
/// Larger constants favor proximity harder before shedding load.
pub fn ablation_constant(h: &mut Harness) -> String {
    let workload = "zipf";
    let mut out = String::from("== Ablation: distribution constant (Fig. 2's \"2\") ==\n");
    let mut rows = Vec::new();
    for constant in [1.5, 2.0, 4.0, 8.0] {
        eprintln!("  [sim] constant {constant}");
        let params = Params::builder()
            .distribution_constant(constant)
            .build()
            .expect("valid params");
        let scenario = h
            .cfg
            .scenario()
            .params(params)
            .build()
            .expect("valid scenario");
        let r = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        let warmup = r.max_load.len() / 4;
        rows.push(vec![
            format!("{constant}"),
            fmt_bw(r.equilibrium_bandwidth_rate()),
            fmt_ms(r.equilibrium_latency()),
            format!("{:.1}", r.peak_load_after(warmup)),
            format!("{:.2}", r.equilibrium_avg_replicas()),
        ]);
    }
    let headers = [
        "constant",
        "eq bw",
        "eq lat (ms)",
        "peak load",
        "avg replicas",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "ablation_constant", &headers, &rows);
    out
}

/// Sweep of the deletion threshold `u` (with `m = 6u` as in the paper):
/// lower thresholds replicate more aggressively.
pub fn ablation_thresholds(h: &mut Harness) -> String {
    let workload = "zipf";
    let mut out = String::from("== Ablation: deletion/replication thresholds (m = 6u) ==\n");
    let mut rows = Vec::new();
    for u in [0.01, 0.03, 0.09] {
        eprintln!("  [sim] u={u}");
        let params = Params::builder()
            .thresholds(u, 6.0 * u)
            .build()
            .expect("valid params");
        let scenario = h
            .cfg
            .scenario()
            .params(params)
            .build()
            .expect("valid scenario");
        let r = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        let peak_overhead = r.overhead_fractions().into_iter().fold(0.0f64, f64::max) * 100.0;
        rows.push(vec![
            format!("{u}"),
            fmt_bw(r.equilibrium_bandwidth_rate()),
            fmt_ms(r.equilibrium_latency()),
            format!("{:.2}", r.equilibrium_avg_replicas()),
            r.relocations().to_string(),
            format!("{peak_overhead:.3}%"),
        ]);
    }
    let headers = [
        "u (req/s)",
        "eq bw",
        "eq lat (ms)",
        "avg replicas",
        "relocations",
        "peak overhead",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "ablation_thresholds", &headers, &rows);
    out
}

/// Sweep of the placement period: responsiveness vs. churn.
pub fn ablation_period(h: &mut Harness) -> String {
    let workload = "regional";
    let mut out = String::from("== Ablation: placement period ==\n");
    let mut rows = Vec::new();
    for period in [50.0, 100.0, 200.0] {
        eprintln!("  [sim] period={period}");
        let params = Params::builder()
            .placement_period(period)
            .build()
            .expect("valid params");
        let scenario = h
            .cfg
            .scenario()
            .params(params)
            .metric_bin(100.0)
            .build()
            .expect("valid scenario");
        let r = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        let adj = r
            .adjustment(EquilibriumSpec::default())
            .map(|a| format!("{:.0}", a.adjustment_time / 60.0))
            .unwrap_or_else(|| "n/a".into());
        rows.push(vec![
            format!("{period}"),
            adj,
            fmt_bw(r.equilibrium_bandwidth_rate()),
            format!("{:.2}", r.equilibrium_avg_replicas()),
            r.relocations().to_string(),
        ]);
    }
    let headers = [
        "period (s)",
        "adjustment (min)",
        "eq bw",
        "avg replicas",
        "relocations",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "ablation_period", &headers, &rows);
    out
}

/// Responsiveness to a demand change: the hot-site set is replaced
/// mid-run and we measure how long the protocol takes to re-settle.
pub fn demand_shift(h: &mut Harness) -> String {
    let cfg = h.cfg.clone();
    let shift_at = cfg.duration / 2.0;
    eprintln!("  [sim] demand shift at t={shift_at}");
    let before = make_workload("hot-sites", cfg.num_objects, cfg.seed);
    let after = make_workload("hot-sites", cfg.num_objects, cfg.seed.wrapping_add(777));
    let workload = Box::new(DemandShift::new(before, after, shift_at));
    // Run twice as long so both phases have room to settle.
    let scenario = cfg.scenario().build().expect("valid scenario");
    let r = Simulation::new(scenario, workload).run();

    let mut out = format!("== Demand shift: hot-site set replaced at t={shift_at:.0}s ==\n");
    let rates = r.total_bandwidth_rates();
    let spec = r.client_bandwidth.spec();
    let mut rows = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        rows.push(vec![format!("{:.0}", spec.bin_start(i)), fmt_bw(rate)]);
    }
    let headers = ["t(s)", "total bw (MB·hops/s)"];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&cfg, "demand_shift", &headers, &rows);

    // Re-adjustment time: settle point of the post-shift suffix.
    let shift_bin = spec.bin_index(shift_at);
    let suffix = &rates[shift_bin.min(rates.len())..];
    if !suffix.is_empty() {
        let tail_len = (suffix.len() / 4).max(1);
        let eq: f64 = suffix[suffix.len() - tail_len..].iter().sum::<f64>() / tail_len as f64;
        let threshold = 1.1 * eq;
        let mut settled_from = 0usize;
        for (i, &v) in suffix.iter().enumerate() {
            if v > threshold {
                settled_from = i + 1;
            }
        }
        if settled_from < suffix.len() {
            let _ = writeln!(
                out,
                "\nre-adjustment after shift: {:.0} min (threshold {:.2} MB·hops/s)",
                (settled_from as f64 * spec.width()) / 60.0,
                threshold / 1e6
            );
        } else {
            let _ = writeln!(out, "\nre-adjustment after shift: did not settle");
        }
    }
    out
}

/// §5 update propagation: sweep the aggregate provider-update rate and
/// compare an uncapped catalog against a replica-capped one. More
/// replicas mean faster reads but costlier updates; caps trade the other
/// way — the §5 design space.
pub fn updates(h: &mut Harness) -> String {
    use radar_core::{Catalog, ObjectKind};
    use radar_simnet::NodeId as Node;
    let workload = "zipf";
    let mut out =
        String::from("== §5 update propagation: provider-update rate × replica caps ==\n");
    let mut rows = Vec::new();
    for (label, cap, rate) in [
        ("uncapped, no updates", None, 0.0),
        ("uncapped, 10 upd/s", None, 10.0),
        ("uncapped, 50 upd/s", None, 50.0),
        ("cap 2, 50 upd/s", Some(2u32), 50.0),
        ("cap 1 (migrate-only), 50 upd/s", Some(1), 50.0),
    ] {
        eprintln!("  [sim] updates  {label}");
        let mut builder = h.cfg.scenario().update_rate(rate);
        if let Some(max_replicas) = cap {
            let kinds = vec![ObjectKind::NonCommuting { max_replicas }; h.cfg.num_objects as usize];
            let primaries = (0..h.cfg.num_objects)
                .map(|i| Node::new((i % 53) as u16))
                .collect();
            builder = builder.catalog(Catalog::from_parts(kinds, 12 * 1024, primaries));
        }
        let scenario = builder.build().expect("valid scenario");
        let r = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        let total_traffic: f64 = r.total_bandwidth_sums().iter().sum();
        let update_share = if total_traffic > 0.0 {
            (r.update_bandwidth.total() / total_traffic * 100.0).max(0.0)
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            fmt_bw(r.equilibrium_bandwidth_rate()),
            format!("{:.2}", r.equilibrium_avg_replicas()),
            r.updates_propagated.to_string(),
            format!("{update_share:.2}%"),
            r.primary_reassignments.to_string(),
        ]);
    }
    let headers = [
        "configuration",
        "eq bw",
        "avg replicas",
        "updates",
        "update traffic share",
        "primary moves",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "updates", &headers, &rows);
    out.push_str(
        "\n(replica caps bound the update fan-out at the cost of serving reads from\n\
         farther away — §5's consistency/performance trade)\n",
    );
    out
}

/// Placement-policy head-to-head across §5 consistency mixes: the
/// paper's distribution algorithm against the availability-target and
/// cluster-replication baselines, each run under read-only, mixed, and
/// write-heavy catalogs with live provider updates. Besides the table,
/// writes the machine-readable `BENCH_policies.json` artifact at the
/// workspace root (next to the perf baselines) so CI can gate on the
/// sweep's presence and shape.
pub fn policies(h: &mut Harness) -> String {
    use radar_baselines::{AvailabilityPlacement, ClusterPlacement};
    use radar_core::{Catalog, ConsistencyMix};
    use radar_sim::{Json, PlacementPolicy, RadarPlacement, RadarSelection};

    let workload = "zipf";
    // Aggregate provider-update rate for the update-bearing mixes; zero
    // for read-only keeps that column the exact default configuration.
    let update_rate = 2.0;
    let mut out =
        String::from("== Placement policies × consistency mixes (BENCH_policies.json) ==\n");
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for &mix in ConsistencyMix::ALL {
        for placement_name in ["radar", "availability", "cluster"] {
            eprintln!("  [sim] placement {placement_name} / {mix}");
            let mut builder = h.cfg.scenario();
            if mix != ConsistencyMix::ReadOnly {
                builder = builder.update_rate(update_rate).catalog(Catalog::with_mix(
                    h.cfg.num_objects,
                    12 * 1024,
                    53,
                    mix,
                ));
            }
            let scenario = builder.build().expect("valid scenario");
            let placement: Box<dyn PlacementPolicy + Send> = match placement_name {
                "radar" => Box::new(RadarPlacement::new()),
                "availability" => Box::new(AvailabilityPlacement::new()),
                _ => Box::new(ClusterPlacement::new()),
            };
            let r = Simulation::with_policies(
                scenario,
                make_workload(workload, h.cfg.num_objects, h.cfg.seed),
                Box::new(RadarSelection::new()),
                placement,
            )
            .run();
            let warmup = r.max_load.len() * 3 / 4;
            let peak_overhead = r.overhead_fractions().into_iter().fold(0.0f64, f64::max) * 100.0;
            // `.max(0.0)` normalizes the empty series' `-0.0` sum.
            let update_traffic: f64 = r.update_bandwidth.sums().iter().sum::<f64>().max(0.0);
            rows.push(vec![
                mix.name().to_string(),
                r.placement_policy.clone(),
                fmt_bw(r.equilibrium_bandwidth_rate()),
                format!("{:.1}", r.peak_load_after(warmup)),
                format!("{:.2}", r.equilibrium_avg_replicas()),
                format!("{peak_overhead:.3}%"),
                if r.update_lag_type1.count > 0 {
                    format!("{:.2}", r.update_lag_type1.mean)
                } else {
                    "-".into()
                },
                format!("{:.2}", update_traffic / 1e6),
            ]);
            runs.push(Json::Obj(vec![
                ("placement".into(), Json::Str(r.placement_policy.clone())),
                ("mix".into(), Json::Str(mix.name().into())),
                (
                    "eq_bandwidth_mb_hops_per_s".into(),
                    Json::Num(r.equilibrium_bandwidth_rate() / 1e6),
                ),
                (
                    "peak_load_final_quarter".into(),
                    Json::Num(r.peak_load_after(warmup)),
                ),
                (
                    "avg_replicas".into(),
                    Json::Num(r.equilibrium_avg_replicas()),
                ),
                (
                    "peak_relocation_overhead_pct".into(),
                    Json::Num(peak_overhead),
                ),
                ("relocations".into(), Json::UInt(r.relocations())),
                ("updates".into(), Json::UInt(r.updates_propagated)),
                (
                    "update_traffic_mb_hops".into(),
                    Json::Num(update_traffic / 1e6),
                ),
                (
                    "staleness_t1_mean_s".into(),
                    Json::Num(r.update_lag_type1.mean),
                ),
                (
                    "staleness_t1_max_s".into(),
                    Json::Num(r.update_lag_type1.max),
                ),
                ("wasted_deliveries".into(), Json::UInt(r.wasted_deliveries)),
            ]));
        }
    }
    let headers = [
        "mix",
        "placement",
        "eq bw (MB·hops/s)",
        "peak load (final quarter)",
        "avg replicas",
        "peak overhead",
        "t1 staleness (s)",
        "update traffic (MB·hops)",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "policies", &headers, &rows);

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("radar-bench-policies-v1".into())),
        (
            "config".into(),
            Json::Obj(vec![
                ("objects".into(), Json::UInt(h.cfg.num_objects as u64)),
                ("rate".into(), Json::Num(h.cfg.node_rate)),
                ("duration".into(), Json::Num(h.cfg.duration)),
                ("seed".into(), Json::UInt(h.cfg.seed)),
                ("workload".into(), Json::Str(workload.into())),
                ("update_rate".into(), Json::Num(update_rate)),
            ]),
        ),
        ("runs".into(), Json::Arr(runs)),
    ]);
    // CARGO_MANIFEST_DIR is crates/bench; the artifact lives at the
    // workspace root next to BENCH_loop.json.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_policies.json");
    let mut body = doc.pretty();
    body.push('\n');
    std::fs::write(&path, body).expect("write BENCH_policies.json");
    let _ = writeln!(out, "\nwrote {}", path.display());
    out.push_str(
        "(availability pins a replica target and ignores load; cluster replicates\n\
         to the heaviest-demand node only — the §4 algorithm is the one that\n\
         trades all four columns at once)\n",
    );
    out
}

/// Redirector partitioning (§2): more hash-partitioned redirectors at
/// central nodes shorten the control round-trip every request pays.
pub fn redirectors(h: &mut Harness) -> String {
    let workload = "zipf";
    let mut out = String::from("== §2 redirector partitioning ==\n");
    let mut rows = Vec::new();
    for n in [1u16, 2, 4, 8] {
        eprintln!("  [sim] redirectors={n}");
        let scenario = h
            .cfg
            .scenario()
            .num_redirectors(n)
            .build()
            .expect("valid scenario");
        let r = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        let busiest = r.redirector_requests.values().copied().max().unwrap_or(0);
        let total: u64 = r.redirector_requests.values().sum();
        rows.push(vec![
            n.to_string(),
            fmt_ms(r.equilibrium_latency()),
            fmt_bw(r.equilibrium_bandwidth_rate()),
            format!("{:.2}", r.equilibrium_avg_replicas()),
            format!("{:.0}%", busiest as f64 / total.max(1) as f64 * 100.0),
        ]);
    }
    let headers = [
        "redirectors",
        "eq lat (ms)",
        "eq bw",
        "avg replicas",
        "busiest redirector share",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "redirectors", &headers, &rows);
    out
}

/// Host heterogeneity (§2 weights): double-capacity hosts get
/// proportionally higher watermarks and absorb proportionally more
/// replica mass, keeping every host under its own high watermark.
pub fn heterogeneous(h: &mut Harness) -> String {
    let workload = "hot-pages";
    let mut out = String::from("== §2 heterogeneous hosts (weights) ==\n");
    let mut rows = Vec::new();
    for (label, big_every) in [
        ("uniform 200 req/s", None),
        ("every 2nd host 400 req/s", Some(2)),
    ] {
        eprintln!("  [sim] capacities: {label}");
        let mut builder = h.cfg.scenario();
        let mut capacities = vec![200.0; 53];
        if let Some(step) = big_every {
            for i in (0..53).step_by(step) {
                capacities[i] = 400.0;
            }
            builder = builder.node_capacities(capacities.clone());
        }
        let scenario = builder.build().expect("valid scenario");
        let r = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        let (mut big, mut small) = (0u64, 0u64);
        for reps in &r.final_replicas {
            for &(node, aff) in reps {
                if capacities[node as usize] > 200.0 {
                    big += aff as u64;
                } else {
                    small += aff as u64;
                }
            }
        }
        let warmup = r.max_load.len() * 3 / 4;
        rows.push(vec![
            label.to_string(),
            fmt_bw(r.equilibrium_bandwidth_rate()),
            fmt_ms(r.equilibrium_latency()),
            format!("{:.1}", r.peak_load_after(warmup)),
            big.to_string(),
            small.to_string(),
        ]);
    }
    let headers = [
        "capacities",
        "eq bw",
        "eq lat (ms)",
        "peak load (final)",
        "replicas on big hosts",
        "on standard hosts",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "heterogeneous", &headers, &rows);
    out
}

/// Per-link view of the bandwidth story: which backbone links dynamic
/// replication relieves. The paper's bytes×hops metric aggregates this
/// away; the trunk links are where the reduction actually lands.
pub fn links(h: &mut Harness) -> String {
    use radar_simnet::builders;
    let workload = "regional";
    let mut out = String::from("== Per-link traffic: where the bandwidth reduction lands ==\n");
    let dynamic = h.dynamic(workload).clone();
    let static_run = h.static_run(workload).clone();
    let topo = builders::uunet();
    // Rank links by static traffic.
    let mut ranked: Vec<usize> = (0..static_run.link_traffic.len()).collect();
    ranked.sort_by(|&a, &b| {
        static_run.link_traffic[b]
            .1
            .partial_cmp(&static_run.link_traffic[a].1)
            .expect("finite traffic")
    });
    let mut rows = Vec::new();
    for &i in ranked.iter().take(12) {
        let ((a, b), s_bytes) = static_run.link_traffic[i];
        let (_, d_bytes) = dynamic.link_traffic[i];
        let (na, nb) = (radar_simnet::NodeId::new(a), radar_simnet::NodeId::new(b));
        let kind = if topo.region(na) == topo.region(nb) {
            "intra"
        } else {
            "TRUNK"
        };
        rows.push(vec![
            format!("{} — {}", topo.name(na), topo.name(nb)),
            kind.to_string(),
            format!("{:.1}", s_bytes / 1e9),
            format!("{:.1}", d_bytes / 1e9),
            format!("{:.0}%", (1.0 - d_bytes / s_bytes.max(1.0)) * 100.0),
        ]);
    }
    let headers = ["link", "kind", "static GB", "dynamic GB", "relief"];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "links", &headers, &rows);

    // Aggregate: trunk vs intra-region bytes.
    let mut sums = [[0.0f64; 2]; 2]; // [static/dynamic][trunk/intra]
    for (run, row) in [&static_run, &dynamic].iter().zip(0..) {
        for &((a, b), bytes) in &run.link_traffic {
            let trunk = topo.region(radar_simnet::NodeId::new(a))
                != topo.region(radar_simnet::NodeId::new(b));
            sums[row][usize::from(!trunk)] += bytes;
        }
    }
    out.push_str(&format!(
        "\ntransoceanic/transcontinental trunks: {:.1} GB static → {:.1} GB dynamic ({:.0}% relief)\n\
         intra-region links:                   {:.1} GB static → {:.1} GB dynamic ({:.0}% relief)\n",
        sums[0][0] / 1e9,
        sums[1][0] / 1e9,
        (1.0 - sums[1][0] / sums[0][0].max(1.0)) * 100.0,
        sums[0][1] / 1e9,
        sums[1][1] / 1e9,
        (1.0 - sums[1][1] / sums[0][1].max(1.0)) * 100.0,
    ));
    out
}

/// Storage-pressure sweep (§4's motivation): the protocol should buy
/// most of its bandwidth reduction with few replicas, so modest per-host
/// storage caps barely hurt — "it is better to spend money on a greater
/// number of inexpensive hosts".
pub fn storage(h: &mut Harness) -> String {
    let workload = "zipf";
    let per_host_baseline = h.cfg.num_objects / 53 + 1;
    let mut out = format!(
        "== Storage pressure (initial placement needs ~{per_host_baseline} objects/host) ==\n"
    );
    let mut rows = Vec::new();
    for (label, limit) in [
        ("unbounded", None),
        ("3× initial", Some(per_host_baseline * 3)),
        ("2× initial", Some(per_host_baseline * 2)),
        ("1.25× initial", Some(per_host_baseline * 5 / 4)),
    ] {
        eprintln!("  [sim] storage  {label}");
        let mut builder = h.cfg.scenario();
        if let Some(l) = limit {
            builder = builder.storage_limit(l);
        }
        let scenario = builder.build().expect("valid scenario");
        let r = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        rows.push(vec![
            label.to_string(),
            fmt_bw(r.equilibrium_bandwidth_rate()),
            fmt_ms(r.equilibrium_latency()),
            format!("{:.2}", r.equilibrium_avg_replicas()),
            r.relocations().to_string(),
        ]);
    }
    let headers = [
        "per-host storage",
        "eq bw",
        "eq lat (ms)",
        "avg replicas",
        "relocations",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "storage", &headers, &rows);
    out
}

/// Seed-variance check: Table 2's metrics across independent seeds, as
/// mean ± population standard deviation. Guards the headline numbers
/// against being artifacts of one random stream.
pub fn variance(h: &mut Harness) -> String {
    let seeds = 3u64;
    let mut out = format!("== Seed variance: Table 2 metrics over {seeds} seeds ==\n");
    let mut rows = Vec::new();
    for workload in crate::WORKLOADS {
        let mut bw = Vec::new();
        let mut replicas = Vec::new();
        let mut adjustment = Vec::new();
        for s in 0..seeds {
            eprintln!("  [sim] {workload} seed {s}");
            let mut cfg = h.cfg.clone();
            cfg.seed = h.cfg.seed + s * 1000;
            let r = crate::run_dynamic(&cfg, workload);
            bw.push(r.equilibrium_bandwidth_rate() / 1e6);
            replicas.push(r.equilibrium_avg_replicas());
            if let Some(a) = r.adjustment(EquilibriumSpec::default()) {
                adjustment.push(a.adjustment_time / 60.0);
            }
        }
        let stat = |xs: &[f64]| {
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            (mean, var.sqrt())
        };
        let (bw_m, bw_s) = stat(&bw);
        let (re_m, re_s) = stat(&replicas);
        let (ad_m, ad_s) = stat(&adjustment);
        rows.push(vec![
            workload.to_string(),
            format!("{bw_m:.1} ± {bw_s:.1}"),
            format!("{re_m:.2} ± {re_s:.2}"),
            format!("{ad_m:.0} ± {ad_s:.0}"),
        ]);
    }
    let headers = [
        "workload",
        "eq bw (MB·hops/s)",
        "avg replicas",
        "adjustment (min)",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "variance", &headers, &rows);
    out
}
