//! Availability under injected faults: host crashes, a network
//! partition, and link degradation, with the protocol's graceful
//! degradation (skip dead replicas, fall back to the primary,
//! re-replicate on declared death) measured against a fault-free run.

use radar_sim::{FaultSpec, Simulation};
use radar_simnet::builders;

use crate::{fmt_bw, format_table, make_workload, write_csv};

use super::Harness;

/// Builds the fault schedules the experiment compares, scaled to the
/// configured duration. Link endpoints are real UUNET links so the
/// schedules validate against the default topology.
fn schedules(duration: f64) -> Vec<(&'static str, FaultSpec)> {
    let topo = builders::uunet();
    let links = topo.links();
    let (a1, b1) = links[0];
    let (a2, b2) = links[links.len() / 2];
    let crash = FaultSpec::new()
        // One host fails mid-run and recovers after 20% of the run.
        .host_down(5, 0.3 * duration, Some(0.5 * duration));
    let crash_permanent = FaultSpec::new()
        .with_declare_dead_after(0.02 * duration)
        // Recovers...
        .host_down(5, 0.3 * duration, Some(0.5 * duration))
        // ...and a second host is lost for good: declared dead, its
        // objects re-replicated from their primaries.
        .host_down(12, 0.45 * duration, None);
    let partition = FaultSpec::new()
        .with_declare_dead_after(0.02 * duration)
        .host_down(5, 0.3 * duration, Some(0.5 * duration))
        .host_down(12, 0.45 * duration, None)
        // A backbone link drops (reachability recomputed both times)...
        .link_down(
            a1.index() as u16,
            b1.index() as u16,
            0.35 * duration,
            Some(0.65 * duration),
        )
        // ...and another runs at 4× its normal latency for a while.
        .link_slow(
            a2.index() as u16,
            b2.index() as u16,
            4.0,
            0.5 * duration,
            Some(0.8 * duration),
        );
    vec![
        ("fault-free", FaultSpec::new()),
        ("crash+recover", crash),
        ("+permanent loss", crash_permanent),
        ("+partition+slow", partition),
    ]
}

/// Availability table: request success rate and recovery metrics for
/// increasingly hostile fault schedules, all at the paper's scale and
/// workload.
pub fn faults(h: &mut Harness) -> String {
    let workload = "zipf";
    let mut out = format!("== Availability under injected faults ({workload}) ==\n");
    let mut rows = Vec::new();
    for (label, spec) in schedules(h.cfg.duration) {
        eprintln!("  [sim] faults   {label}");
        let scenario = h
            .cfg
            .scenario()
            .faults(spec)
            .build()
            .expect("valid fault scenario");
        let r = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        rows.push(vec![
            label.to_string(),
            format!("{:.5}", r.availability() * 100.0),
            r.failed_requests.to_string(),
            format!("{:.1}", r.unavailable_object_seconds),
            r.re_replications.to_string(),
            format!("{:.1}", r.restore_time.mean),
            r.primary_fallbacks.to_string(),
            fmt_bw(r.equilibrium_bandwidth_rate()),
        ]);
    }
    let headers = [
        "fault schedule",
        "availability %",
        "failed reqs",
        "unavail obj-s",
        "re-replications",
        "mean restore (s)",
        "primary fallbacks",
        "eq bw",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "faults", &headers, &rows);
    out
}
