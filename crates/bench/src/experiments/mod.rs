//! The paper's tables and figures, regenerated.

mod ablations;
mod faults;

pub use ablations::{
    ablation_constant, ablation_period, ablation_thresholds, baselines, demand_shift,
    heterogeneous, links, policies, redirectors, storage, updates, variance,
};
pub use faults::faults;

use std::collections::HashMap;
use std::fmt::Write as _;

use radar_sim::{RunReport, Simulation};
use radar_simcore::SimRng;
use radar_stats::EquilibriumSpec;
use radar_workload::HotSites;

use crate::{
    fmt_bw, fmt_ms, format_table, make_workload, reduction_percent, run_dynamic, run_static,
    write_csv, ExpConfig, WORKLOADS,
};

/// Caches the paper-configuration runs (dynamic and static per workload)
/// so `all` does not re-simulate for every figure.
#[derive(Debug)]
pub struct Harness {
    /// Scale/output settings for every experiment.
    pub cfg: ExpConfig,
    dynamic: HashMap<String, RunReport>,
    statics: HashMap<String, RunReport>,
}

impl Harness {
    /// Creates an empty harness at the given scale.
    pub fn new(cfg: ExpConfig) -> Self {
        Self {
            cfg,
            dynamic: HashMap::new(),
            statics: HashMap::new(),
        }
    }

    /// The dynamic-placement run of `workload` (simulated on first use).
    pub fn dynamic(&mut self, workload: &str) -> &RunReport {
        if !self.dynamic.contains_key(workload) {
            eprintln!("  [sim] dynamic  {workload}");
            let report = run_dynamic(&self.cfg, workload);
            self.dynamic.insert(workload.to_string(), report);
        }
        &self.dynamic[workload]
    }

    /// The static-baseline run of `workload` (simulated on first use).
    pub fn static_run(&mut self, workload: &str) -> &RunReport {
        if !self.statics.contains_key(workload) {
            eprintln!("  [sim] static   {workload}");
            let report = run_static(&self.cfg, workload);
            self.statics.insert(workload.to_string(), report);
        }
        &self.statics[workload]
    }

    /// Computes all eight paper-configuration runs (dynamic + static for
    /// every workload) on parallel threads and populates the cache.
    /// Purely a wall-clock optimization: results are identical to lazy
    /// sequential computation because every run is seed-deterministic.
    pub fn preload_parallel(&mut self) {
        let cfg = self.cfg.clone();
        let jobs: Vec<(String, bool)> = WORKLOADS
            .iter()
            .flat_map(|w| [(w.to_string(), true), (w.to_string(), false)])
            .filter(|(w, dynamic)| {
                if *dynamic {
                    !self.dynamic.contains_key(w)
                } else {
                    !self.statics.contains_key(w)
                }
            })
            .collect();
        if jobs.is_empty() {
            return;
        }
        eprintln!("  [sim] preloading {} paper runs in parallel…", jobs.len());
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(w, dynamic)| {
                    let cfg = cfg.clone();
                    let w = w.clone();
                    let dynamic = *dynamic;
                    scope.spawn(move || {
                        let report = if dynamic {
                            run_dynamic(&cfg, &w)
                        } else {
                            run_static(&cfg, &w)
                        };
                        (w, dynamic, report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulation threads do not panic"))
                .collect::<Vec<_>>()
        });
        for (w, dynamic, report) in results {
            if dynamic {
                self.dynamic.insert(w, report);
            } else {
                self.statics.insert(w, report);
            }
        }
    }
}

/// Table 1: the simulation parameters in force at this scale.
pub fn table1(h: &mut Harness) -> String {
    let cfg = &h.cfg;
    let scenario = cfg.scenario().build().expect("valid scenario");
    let p = scenario.params;
    let rows = vec![
        vec!["Number of objects".into(), scenario.num_objects.to_string()],
        vec![
            "Size of object".into(),
            format!("{} KB", scenario.object_size / 1024),
        ],
        vec![
            "Placement decision frequency".into(),
            format!("every {} seconds", p.placement_period),
        ],
        vec![
            "Node request rate".into(),
            format!("{} requests per sec", scenario.node_request_rate),
        ],
        vec![
            "Server capacity".into(),
            format!("{} requests per sec", scenario.server_capacity),
        ],
        vec![
            "Network delay".into(),
            format!("{} ms per hop", scenario.network.hop_delay * 1e3),
        ],
        vec![
            "Link bandwidth".into(),
            format!("{} KBps", scenario.network.link_bandwidth / 1e3),
        ],
        vec![
            "High watermark".into(),
            format!("{} requests/sec (50 in fig9 runs)", p.high_watermark),
        ],
        vec![
            "Low watermark".into(),
            format!("{} requests/sec (40 in fig9 runs)", p.low_watermark),
        ],
        vec![
            "Deletion threshold u".into(),
            format!("{} requests/sec", p.deletion_threshold),
        ],
        vec![
            "Replication threshold m".into(),
            format!("6u, or {} requests/sec", p.replication_threshold),
        ],
        vec![
            "Load measurement interval".into(),
            format!("{} seconds", p.measurement_interval),
        ],
        vec![
            "MIGR_RATIO / REPL_RATIO".into(),
            format!("{} / {:.4}", p.migration_ratio, p.replication_ratio),
        ],
        vec![
            "Distribution constant".into(),
            format!("{}", p.distribution_constant),
        ],
        vec![
            "Simulated duration".into(),
            format!("{} seconds", scenario.duration),
        ],
    ];
    format!(
        "== Table 1: simulation parameters ==\n{}",
        format_table(&["Parameter", "Value"], &rows)
    )
}

/// Fig. 6: bandwidth and mean latency vs. time for the four workloads,
/// dynamic replication against the static baseline.
pub fn fig6(h: &mut Harness) -> String {
    let mut out = String::from("== Figure 6: bandwidth and latency, dynamic vs static ==\n");
    let mut summary = Vec::new();
    for workload in WORKLOADS {
        let dynamic = h.dynamic(workload).clone();
        let static_run = h.static_run(workload).clone();
        let d_bw = dynamic.total_bandwidth_rates();
        let s_bw = static_run.total_bandwidth_rates();
        let d_lat = dynamic.latency_series.means_filled();
        let s_lat = static_run.latency_series.means_filled();
        let bins = d_bw.len().min(s_bw.len());
        let spec = dynamic.client_bandwidth.spec();
        let mut rows = Vec::with_capacity(bins);
        for i in 0..bins {
            rows.push(vec![
                format!("{:.0}", spec.bin_start(i)),
                fmt_bw(s_bw[i]),
                fmt_bw(d_bw[i]),
                fmt_ms(s_lat[i]),
                fmt_ms(d_lat[i]),
            ]);
        }
        let headers = [
            "t(s)",
            "static bw (MB·hops/s)",
            "dynamic bw",
            "static lat (ms)",
            "dynamic lat",
        ];
        let _ = writeln!(out, "\n-- workload: {workload} --");
        out.push_str(&format_table(&headers, &rows));
        write_csv(&h.cfg, &format!("fig6_{workload}"), &headers, &rows);

        let bw_red = reduction_percent(
            static_run.equilibrium_bandwidth_rate(),
            dynamic.equilibrium_bandwidth_rate(),
        );
        // The paper's headline numbers compare the dynamic run's own
        // initial (unadjusted) bins against its equilibrium.
        let bw_red_initial = reduction_percent(
            dynamic.initial_bandwidth_rate(),
            dynamic.equilibrium_bandwidth_rate(),
        );
        let lat_red = reduction_percent(
            static_run.equilibrium_latency(),
            dynamic.equilibrium_latency(),
        );
        summary.push(vec![
            workload.to_string(),
            fmt_bw(static_run.equilibrium_bandwidth_rate()),
            fmt_bw(dynamic.equilibrium_bandwidth_rate()),
            format!("{bw_red:.1}%"),
            format!("{bw_red_initial:.1}%"),
            fmt_ms(static_run.equilibrium_latency()),
            fmt_ms(dynamic.equilibrium_latency()),
            format!("{lat_red:.1}%"),
        ]);
    }
    out.push_str("\n-- equilibrium summary (paper: bw reductions 68.3% hot-sites, 62.9% hot-pages, 60.1% zipf, 90.1% regional; latency ~20%, 28% regional) --\n");
    let headers = [
        "workload",
        "static bw",
        "dynamic bw",
        "red vs static",
        "red vs initial",
        "static lat(ms)",
        "dynamic lat(ms)",
        "lat reduction",
    ];
    out.push_str(&format_table(&headers, &summary));
    write_csv(&h.cfg, "fig6_summary", &headers, &summary);
    out
}

/// Fig. 7: relocation overhead as a percentage of total traffic.
pub fn fig7(h: &mut Harness) -> String {
    let mut out = String::from(
        "== Figure 7: network overhead (relocation traffic, % of total; paper: always < 2.5%) ==\n",
    );
    let mut rows = Vec::new();
    let mut bins = 0;
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for workload in WORKLOADS {
        let fractions = h.dynamic(workload).overhead_fractions();
        bins = bins.max(fractions.len());
        columns.push(fractions);
    }
    let spec = h.dynamic(WORKLOADS[0]).client_bandwidth.spec();
    for i in 0..bins {
        let mut row = vec![format!("{:.0}", spec.bin_start(i))];
        for col in &columns {
            row.push(format!("{:.3}", col.get(i).copied().unwrap_or(0.0) * 100.0));
        }
        rows.push(row);
    }
    let headers = ["t(s)", "hot-sites %", "hot-pages %", "zipf %", "regional %"];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "fig7", &headers, &rows);
    let mut peaks = Vec::new();
    for (w, col) in WORKLOADS.iter().zip(&columns) {
        let peak = col.iter().fold(0.0f64, |a, &b| a.max(b)) * 100.0;
        peaks.push(vec![w.to_string(), format!("{peak:.3}%")]);
    }
    out.push_str("\npeak overhead per workload:\n");
    out.push_str(&format_table(&["workload", "peak overhead"], &peaks));
    out
}

/// Fig. 8a: maximum host load over time (must stay under the high
/// watermark once the initial hot spots are dissolved).
pub fn fig8a(h: &mut Harness) -> String {
    let mut out = String::from("== Figure 8a: maximum host load (paper: stays below hw) ==\n");
    let hw = h
        .cfg
        .scenario()
        .build()
        .expect("valid")
        .params
        .high_watermark;
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut bins = 0;
    for workload in WORKLOADS {
        let series = &h.dynamic(workload).max_load;
        let vals = series.means_filled();
        bins = bins.max(vals.len());
        columns.push(vals);
    }
    let spec = h.dynamic(WORKLOADS[0]).max_load.spec();
    let mut rows = Vec::new();
    for i in (0..bins).step_by(5) {
        let mut row = vec![format!("{:.0}", spec.bin_start(i))];
        for col in &columns {
            row.push(format!("{:.1}", col.get(i).copied().unwrap_or(0.0)));
        }
        rows.push(row);
    }
    let headers = ["t(s)", "hot-sites", "hot-pages", "zipf", "regional"];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "fig8a", &headers, &rows);
    let mut peaks = Vec::new();
    for (w, _) in WORKLOADS.iter().zip(&columns) {
        let report = h.dynamic(w);
        // Skip the first quarter as the hot-spot dissolution transient.
        let warmup = report.max_load.len() / 4;
        peaks.push(vec![
            w.to_string(),
            format!("{:.1}", report.peak_load()),
            format!("{:.1}", report.peak_load_after(warmup)),
            format!("{hw:.0}"),
        ]);
    }
    out.push_str("\npeak loads (requests/sec):\n");
    out.push_str(&format_table(
        &["workload", "peak overall", "peak after warmup", "hw"],
        &peaks,
    ));
    out
}

/// Fig. 8b: one host's actual load against the protocol's upper/lower
/// estimates. Uses the hot-sites workload and tracks one of the hot
/// sites — the host whose estimates actually move.
pub fn fig8b(h: &mut Harness) -> String {
    let cfg = h.cfg.clone();
    // Build the hot-sites workload directly so the tracked host can be a
    // hot site.
    let mut wl_rng = SimRng::seed_from(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let hot_sites = HotSites::new(cfg.num_objects, 53, 0.1, 0.9, &mut wl_rng);
    let tracked = (hot_sites.hot_objects()[0].index() % 53) as u16;
    eprintln!("  [sim] dynamic  hot-sites (tracking node {tracked})");
    let scenario = cfg
        .scenario()
        .tracked_host(tracked)
        .build()
        .expect("valid scenario");
    let report = Simulation::new(scenario, Box::new(hot_sites)).run();

    let mut out = format!(
        "== Figure 8b: load estimates vs actual (hot-sites, node {tracked}; paper: actual lies between the estimates) ==\n"
    );
    let mut rows = Vec::new();
    for s in report.load_estimates.iter().step_by(3) {
        rows.push(vec![
            format!("{:.0}", s.t),
            format!("{:.2}", s.lower),
            format!("{:.2}", s.actual),
            format!("{:.2}", s.upper),
        ]);
    }
    let headers = ["t(s)", "low estimate", "actual", "high estimate"];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&cfg, "fig8b", &headers, &rows);
    let violations = report
        .load_estimates
        .iter()
        .filter(|s| s.actual < s.lower - 1e-9 || s.actual > s.upper + 1e-9)
        .count();
    let _ = writeln!(
        out,
        "\nsamples where actual escapes [low, high]: {violations} of {}",
        report.load_estimates.len()
    );
    out
}

/// Table 2: adjustment time and average number of replicas per workload.
pub fn table2(h: &mut Harness) -> String {
    let mut rows = Vec::new();
    for workload in WORKLOADS {
        let report = h.dynamic(workload);
        let adj = report
            .adjustment(EquilibriumSpec::default())
            .map(|a| format!("{:.0}", a.adjustment_time / 60.0))
            .unwrap_or_else(|| "n/a".to_string());
        rows.push(vec![
            workload.to_string(),
            adj,
            format!("{:.2}", report.equilibrium_avg_replicas()),
        ]);
    }
    let headers = [
        "Workload",
        "Adjustment Time (min)",
        "Average Number of Replicas",
    ];
    let out = format!(
        "== Table 2: adjustment time and replica counts (paper: 20-23 min; 2.62 / 2.59 / 1.86 / 1.49 replicas) ==\n{}",
        format_table(&headers, &rows)
    );
    write_csv(&h.cfg, "table2", &headers, &rows);
    out
}

/// Fig. 9: the high-load configuration (hw=50, lw=40) — reduced gains
/// and responsiveness relative to the normal-load runs.
pub fn fig9(h: &mut Harness) -> String {
    let mut out = String::from(
        "== Figure 9: high load (hw=50, lw=40; paper: bandwidth +2%..+17% vs normal watermarks, slower adjustment) ==\n",
    );
    let mut rows = Vec::new();
    for workload in WORKLOADS {
        let normal = h.dynamic(workload).clone();
        eprintln!("  [sim] high-load {workload}");
        let scenario = h
            .cfg
            .scenario()
            .params(radar_core::Params::paper_high_load())
            .build()
            .expect("valid scenario");
        let high = Simulation::new(
            scenario,
            make_workload(workload, h.cfg.num_objects, h.cfg.seed),
        )
        .run();
        let bw_change = -reduction_percent(
            normal.equilibrium_bandwidth_rate(),
            high.equilibrium_bandwidth_rate(),
        );
        let lat_change =
            -reduction_percent(normal.equilibrium_latency(), high.equilibrium_latency());
        let adj = |r: &radar_sim::RunReport| {
            r.adjustment(EquilibriumSpec::default())
                .map(|a| format!("{:.0}", a.adjustment_time / 60.0))
                .unwrap_or_else(|| "n/a".into())
        };
        rows.push(vec![
            workload.to_string(),
            fmt_bw(normal.equilibrium_bandwidth_rate()),
            fmt_bw(high.equilibrium_bandwidth_rate()),
            format!("{bw_change:+.1}%"),
            format!("{lat_change:+.1}%"),
            adj(&normal),
            adj(&high),
            format!("{:.2}", high.equilibrium_avg_replicas()),
        ]);
    }
    let headers = [
        "workload",
        "normal bw",
        "high-load bw",
        "bw change",
        "lat change",
        "adj normal (min)",
        "adj high (min)",
        "replicas (high)",
    ];
    out.push_str(&format_table(&headers, &rows));
    write_csv(&h.cfg, "fig9", &headers, &rows);
    out
}
