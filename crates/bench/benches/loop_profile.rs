//! Records the machine-readable event-loop baseline `BENCH_loop.json`.
//!
//! Runs the simulator on a fixed seed with loop profiling enabled and
//! writes per-event-type `count`/`mean_ns`/`max_ns` rows to
//! `BENCH_loop.json` at the workspace root, giving successive PRs a
//! perf trajectory for the hot event handlers (`redirect`, `placement`,
//! …). The run is repeated a few times and the best (minimum) mean per
//! handler kept, which filters scheduler noise the same way min-of-reps
//! does in conventional micro-benchmarks.
//!
//! With `--test` (as `cargo bench -- --test` passes in
//! `scripts/check.sh`), a miniature run executes once as a smoke test
//! and nothing is written.

use std::collections::BTreeMap;

use radar_bench::timing::{loop_baseline_json, LoopRow};
use radar_sim::{Scenario, Simulation};

/// Fixed seed shared by every baseline run (same as the golden log).
const SEED: u64 = 42;
/// Profiled-run shape: enough redirects (~16 k) for a stable mean while
/// staying well under a second of wall time per repetition.
const OBJECTS: u32 = 64;
const RATE: f64 = 0.5;
const DURATION: f64 = 600.0;
const REPS: usize = 5;

fn profile_run(objects: u32, rate: f64, duration: f64) -> radar_sim::obs::LoopProfile {
    let scenario = Scenario::builder()
        .num_objects(objects)
        .node_request_rate(rate)
        .duration(duration)
        .seed(SEED)
        .build()
        .expect("valid scenario");
    let workload = radar_bench::make_workload("zipf", objects, SEED);
    let mut sim = Simulation::new(scenario, workload);
    sim.enable_loop_profile();
    sim.run().loop_profile.expect("loop profile was enabled")
}

fn main() {
    let test_only = std::env::args().any(|a| a == "--test");
    if test_only {
        let profile = profile_run(16, 0.05, 60.0);
        assert!(!profile.is_empty(), "profiled run produced no events");
        println!("{:<44} ok (smoke)", "loop_profile/baseline");
        return;
    }

    // Best-of-REPS per handler: the run is deterministic (fixed seed),
    // so counts are identical across repetitions and only wall time
    // varies; keep the minimum mean and max observed for each label.
    let mut best: BTreeMap<String, LoopRow> = BTreeMap::new();
    for _ in 0..REPS {
        let profile = profile_run(OBJECTS, RATE, DURATION);
        for (label, stats) in profile.rows() {
            best.entry(label.to_string())
                .and_modify(|row| {
                    row.mean_ns = row.mean_ns.min(stats.mean_ns());
                    row.max_ns = row.max_ns.min(stats.max_ns);
                })
                .or_insert(LoopRow {
                    label: label.to_string(),
                    count: stats.count,
                    mean_ns: stats.mean_ns(),
                    max_ns: stats.max_ns,
                });
        }
    }

    let rows: Vec<LoopRow> = best.into_values().collect();
    let config = [
        ("objects", OBJECTS.to_string()),
        ("rate", format!("{RATE:.2}")),
        ("duration", format!("{DURATION:.1}")),
        ("seed", SEED.to_string()),
        ("repetitions", REPS.to_string()),
    ];
    let json = loop_baseline_json(&config, &rows);

    // CARGO_MANIFEST_DIR is crates/bench; the baseline lives at the
    // workspace root next to EXPERIMENTS.md.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_loop.json");
    std::fs::write(&path, &json).expect("write BENCH_loop.json");
    println!("wrote {}", path.display());
    print!("{json}");
}
