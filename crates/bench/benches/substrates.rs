//! Micro-benchmarks of the statistics and routing substrates: the
//! per-sample costs that multiply by tens of millions in a full run.

use radar_bench::timing::{black_box, Bench};
use radar_simnet::builders;
use radar_stats::{BinSpec, Histogram, OnlineSummary, P2Quantile, TimeSeries, WindowedRate};

fn bench_timeseries_record(b: &mut Bench) {
    let mut ts = TimeSeries::new(BinSpec::new(100.0));
    let mut t = 0.0;
    b.bench("stats/timeseries_record", || {
        t += 0.013;
        ts.record(t, black_box(12_288.0));
    });
}

fn bench_online_summary(b: &mut Bench) {
    let mut s = OnlineSummary::new();
    let mut v = 0.1;
    b.bench("stats/online_summary_record", || {
        v = (v * 1.000_1) % 10.0;
        s.record(black_box(v));
    });
}

fn bench_p2_quantile(b: &mut Bench) {
    let mut q = P2Quantile::new(0.99);
    let mut v = 0.1;
    b.bench("stats/p2_quantile_record", || {
        v = (v * 1.000_7) % 5.0;
        q.record(black_box(v));
    });
}

fn bench_histogram(b: &mut Bench) {
    let mut h = Histogram::new(0.01, 500);
    let mut v = 0.0;
    b.bench("stats/histogram_record", || {
        v = (v + 0.003) % 6.0;
        h.record(black_box(v));
    });
}

fn bench_windowed_rate(b: &mut Bench) {
    let mut r = WindowedRate::new(20.0);
    let mut t = 0.0;
    b.bench("stats/windowed_rate_record", || {
        t += 0.005;
        r.record(black_box(t));
    });
}

/// Routing-table construction scaling with topology size.
fn bench_routing_scaling(b: &mut Bench) {
    for n in [16u16, 53, 128, 256] {
        let mut seed = 11u64;
        let topo = builders::random_connected(n, n * 2, &mut seed);
        b.bench(&format!("routing_table_build/{n}"), || {
            black_box(topo.routes());
        });
    }
}

fn main() {
    let mut b = Bench::from_args();
    bench_timeseries_record(&mut b);
    bench_online_summary(&mut b);
    bench_p2_quantile(&mut b);
    bench_histogram(&mut b);
    bench_windowed_rate(&mut b);
    bench_routing_scaling(&mut b);
}
