//! Micro-benchmarks of the statistics and routing substrates: the
//! per-sample costs that multiply by tens of millions in a full run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radar_simnet::builders;
use radar_stats::{BinSpec, Histogram, OnlineSummary, P2Quantile, TimeSeries, WindowedRate};

fn bench_timeseries_record(c: &mut Criterion) {
    c.bench_function("stats/timeseries_record", |b| {
        let mut ts = TimeSeries::new(BinSpec::new(100.0));
        let mut t = 0.0;
        b.iter(|| {
            t += 0.013;
            ts.record(t, black_box(12_288.0));
        });
    });
}

fn bench_online_summary(c: &mut Criterion) {
    c.bench_function("stats/online_summary_record", |b| {
        let mut s = OnlineSummary::new();
        let mut v = 0.1;
        b.iter(|| {
            v = (v * 1.000_1) % 10.0;
            s.record(black_box(v));
        });
    });
}

fn bench_p2_quantile(c: &mut Criterion) {
    c.bench_function("stats/p2_quantile_record", |b| {
        let mut q = P2Quantile::new(0.99);
        let mut v = 0.1;
        b.iter(|| {
            v = (v * 1.000_7) % 5.0;
            q.record(black_box(v));
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("stats/histogram_record", |b| {
        let mut h = Histogram::new(0.01, 500);
        let mut v = 0.0;
        b.iter(|| {
            v = (v + 0.003) % 6.0;
            h.record(black_box(v));
        });
    });
}

fn bench_windowed_rate(c: &mut Criterion) {
    c.bench_function("stats/windowed_rate_record", |b| {
        let mut r = WindowedRate::new(20.0);
        let mut t = 0.0;
        b.iter(|| {
            t += 0.005;
            r.record(black_box(t));
        });
    });
}

/// Routing-table construction scaling with topology size.
fn bench_routing_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_table_build");
    for n in [16u16, 53, 128, 256] {
        let mut seed = 11u64;
        let topo = builders::random_connected(n, n * 2, &mut seed);
        group.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, topo| {
            b.iter(|| black_box(topo.routes()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_timeseries_record,
    bench_online_summary,
    bench_p2_quantile,
    bench_histogram,
    bench_windowed_rate,
    bench_routing_scaling
);
criterion_main!(benches);
