//! Micro-benchmarks of the protocol's hot paths: the per-request
//! distribution decision and the periodic placement run. These are the
//! operations a production redirector/host would execute, so their cost
//! bounds the throughput of a real deployment.

use radar_bench::timing::{black_box, Bench};
use radar_core::placement::{run_placement, PlacementEnv};
use radar_core::{CreateObjRequest, CreateObjResponse, HostState, ObjectId, Params, Redirector};
use radar_simnet::{builders, NodeId, RoutingTable};

/// `ChooseReplica` throughput as the replica set grows.
fn bench_choose_replica(b: &mut Bench) {
    let topo = builders::uunet();
    let routes = topo.routes();
    for replicas in [1u16, 2, 4, 8, 16, 32] {
        let mut redirector = Redirector::new(1, 2.0);
        for i in 0..replicas {
            redirector.install(ObjectId::new(0), NodeId::new(i * 3 % 53));
        }
        let mut gw = 0u16;
        b.bench(&format!("choose_replica/{replicas}"), || {
            gw = (gw + 7) % 53;
            black_box(redirector.choose_replica(ObjectId::new(0), NodeId::new(gw), &routes));
        });
    }
}

/// A placement environment that accepts everything, isolating the
/// decision loop's own cost.
struct AcceptAll {
    routes: RoutingTable,
    peer: HostState,
    redirector: Redirector,
}

impl PlacementEnv for AcceptAll {
    fn create_obj(&mut self, _target: NodeId, req: CreateObjRequest) -> CreateObjResponse {
        let resp = radar_core::placement::handle_create_obj(&mut self.peer, 0.0, &req);
        if resp.is_accepted() {
            self.redirector.notify_created(req.object, self.peer.node());
        }
        resp
    }

    fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        self.redirector.request_drop(object, host)
    }

    fn notify_affinity(&mut self, object: ObjectId, host: NodeId, aff: u32) {
        self.redirector.notify_affinity(object, host, aff);
    }

    fn find_offload_recipient(&mut self, _requester: NodeId) -> Option<(NodeId, f64)> {
        Some((self.peer.node(), 0.0))
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.routes.distance(a, b)
    }

    fn may_replicate(&self, _object: ObjectId) -> bool {
        true
    }

    fn replica_count(&self, object: ObjectId) -> usize {
        self.redirector.replica_count(object)
    }
}

/// One full `DecidePlacement` run over a host with 200 objects (the
/// paper-scale per-host object count), including access-count state.
fn bench_run_placement(b: &mut Bench) {
    let topo = builders::uunet();
    let routes = topo.routes();
    b.bench_batched(
        "run_placement/200_objects",
        || {
            let mut host = HostState::new(NodeId::new(0), Params::paper());
            let mut redirector = Redirector::new(200, 2.0);
            let path: Vec<NodeId> = routes.path(NodeId::new(0), NodeId::new(40));
            for i in 0..200u32 {
                let x = ObjectId::new(i);
                host.install_object(x);
                redirector.install(x, NodeId::new(0));
                for _ in 0..(i % 25) {
                    host.record_access(x, &path);
                }
            }
            let env = AcceptAll {
                routes: topo.routes(),
                peer: HostState::new(NodeId::new(1), Params::paper()),
                redirector,
            };
            (host, env)
        },
        |(mut host, mut env)| {
            black_box(run_placement(&mut host, 100.0, &mut env));
        },
    );
}

/// All-pairs routing-table construction for the 53-node testbed — the
/// once-per-experiment cost of ingesting the routing database.
fn bench_routing_table(b: &mut Bench) {
    let topo = builders::uunet();
    b.bench("routing_table/uunet", || {
        black_box(topo.routes());
    });
}

/// Host-side request accounting: the per-request cost at a hosting
/// server (access count along a preference path + serviced tick).
fn bench_record_request(b: &mut Bench) {
    let topo = builders::uunet();
    let routes = topo.routes();
    let path = routes.path(NodeId::new(0), NodeId::new(45));
    let mut host = HostState::new(NodeId::new(0), Params::paper());
    host.install_object(ObjectId::new(0));
    let mut t = 0.0;
    b.bench("host_record_request", || {
        t += 0.005;
        host.record_access(ObjectId::new(0), &path);
        host.record_serviced(t, ObjectId::new(0));
    });
}

fn main() {
    let mut b = Bench::from_args();
    bench_choose_replica(&mut b);
    bench_run_placement(&mut b);
    bench_routing_table(&mut b);
    bench_record_request(&mut b);
}
