//! Micro-benchmarks of the protocol's hot paths: the per-request
//! distribution decision and the periodic placement run. These are the
//! operations a production redirector/host would execute, so their cost
//! bounds the throughput of a real deployment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radar_core::placement::{run_placement, PlacementEnv};
use radar_core::{CreateObjRequest, CreateObjResponse, HostState, ObjectId, Params, Redirector};
use radar_simnet::{builders, NodeId, RoutingTable};

/// `ChooseReplica` throughput as the replica set grows.
fn bench_choose_replica(c: &mut Criterion) {
    let topo = builders::uunet();
    let routes = topo.routes();
    let mut group = c.benchmark_group("choose_replica");
    for replicas in [1u16, 2, 4, 8, 16, 32] {
        let mut redirector = Redirector::new(1, 2.0);
        for i in 0..replicas {
            redirector.install(ObjectId::new(0), NodeId::new(i * 3 % 53));
        }
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, _| {
            let mut gw = 0u16;
            b.iter(|| {
                gw = (gw + 7) % 53;
                black_box(redirector.choose_replica(ObjectId::new(0), NodeId::new(gw), &routes))
            });
        });
    }
    group.finish();
}

/// A placement environment that accepts everything, isolating the
/// decision loop's own cost.
struct AcceptAll {
    routes: RoutingTable,
    peer: HostState,
    redirector: Redirector,
}

impl PlacementEnv for AcceptAll {
    fn create_obj(&mut self, _target: NodeId, req: CreateObjRequest) -> CreateObjResponse {
        let resp = radar_core::placement::handle_create_obj(&mut self.peer, 0.0, &req);
        if resp.is_accepted() {
            self.redirector.notify_created(req.object, self.peer.node());
        }
        resp
    }

    fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        self.redirector.request_drop(object, host)
    }

    fn notify_affinity(&mut self, object: ObjectId, host: NodeId, aff: u32) {
        self.redirector.notify_affinity(object, host, aff);
    }

    fn find_offload_recipient(&mut self, _requester: NodeId) -> Option<(NodeId, f64)> {
        Some((self.peer.node(), 0.0))
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.routes.distance(a, b)
    }

    fn may_replicate(&self, _object: ObjectId) -> bool {
        true
    }
}

/// One full `DecidePlacement` run over a host with 200 objects (the
/// paper-scale per-host object count), including access-count state.
fn bench_run_placement(c: &mut Criterion) {
    let topo = builders::uunet();
    let routes = topo.routes();
    c.bench_function("run_placement/200_objects", |b| {
        b.iter_batched(
            || {
                let mut host = HostState::new(NodeId::new(0), Params::paper());
                let mut redirector = Redirector::new(200, 2.0);
                let path: Vec<NodeId> = routes.path(NodeId::new(0), NodeId::new(40));
                for i in 0..200u32 {
                    let x = ObjectId::new(i);
                    host.install_object(x);
                    redirector.install(x, NodeId::new(0));
                    for _ in 0..(i % 25) {
                        host.record_access(x, &path);
                    }
                }
                let env = AcceptAll {
                    routes: topo.routes(),
                    peer: HostState::new(NodeId::new(1), Params::paper()),
                    redirector,
                };
                (host, env)
            },
            |(mut host, mut env)| {
                black_box(run_placement(&mut host, 100.0, &mut env));
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// All-pairs routing-table construction for the 53-node testbed — the
/// once-per-experiment cost of ingesting the routing database.
fn bench_routing_table(c: &mut Criterion) {
    let topo = builders::uunet();
    c.bench_function("routing_table/uunet", |b| {
        b.iter(|| black_box(topo.routes()));
    });
}

/// Host-side request accounting: the per-request cost at a hosting
/// server (access count along a preference path + serviced tick).
fn bench_record_request(c: &mut Criterion) {
    let topo = builders::uunet();
    let routes = topo.routes();
    let path = routes.path(NodeId::new(0), NodeId::new(45));
    let mut host = HostState::new(NodeId::new(0), Params::paper());
    host.install_object(ObjectId::new(0));
    c.bench_function("host_record_request", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 0.005;
            host.record_access(ObjectId::new(0), &path);
            host.record_serviced(t, ObjectId::new(0));
        });
    });
}

criterion_group!(
    benches,
    bench_choose_replica,
    bench_run_placement,
    bench_routing_table,
    bench_record_request
);
criterion_main!(benches);
