//! End-to-end throughput baseline and regression gate
//! (`BENCH_throughput.json`).
//!
//! Runs the simulator on the fixed loop-profile scenario (seed 42) with
//! the flight recorder attached — the configuration whose hot paths the
//! allocation-free work targets — and reports two whole-run numbers:
//!
//! * **events/sec** — flight-recorder events emitted per wall-clock
//!   second, best of the repetitions (a throughput proxy covering the
//!   entire event loop plus the tracing pipeline);
//! * **allocations/event** — allocator calls per emitted event, counted
//!   by [`radar_bench::timing::CountingAlloc`] (deterministic for a
//!   fixed seed, so it gates exactly).
//!
//! Before overwriting the committed baseline, the previous numbers are
//! read back and the run **fails** (exit 1) when events/sec regressed
//! by more than 10% or allocations/event grew by more than 10% — the
//! regression gate `scripts/check.sh` and CI rely on.
//!
//! With `--test`, a miniature run executes once as a smoke test and
//! nothing is written or gated.

use std::time::{Duration, Instant};

use radar_bench::timing::{
    throughput_baseline_json, throughput_gate, CountingAlloc, ThroughputRow,
};
use radar_sim::obs::{Recorder, SharedRecorder};
use radar_sim::{Scenario, Simulation};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Fixed seed shared by every baseline run (same as the golden log).
const SEED: u64 = 42;
/// Same run shape as the `loop_profile` baseline, so the two documents
/// describe one scenario.
const OBJECTS: u32 = 64;
const RATE: f64 = 0.5;
const DURATION: f64 = 600.0;
const REPS: usize = 5;
/// Recorder ring for the traced run: small enough to reach the evicting
/// (steady-state) regime early, as a long-running deployment would.
const RING: usize = 4_096;
/// Tolerated regression before the gate fails, as a fraction.
const TOLERANCE: f64 = 0.10;

/// One traced run: returns events emitted, wall time, and allocator
/// calls over the run.
fn traced_run(objects: u32, rate: f64, duration: f64) -> (u64, Duration, u64) {
    let scenario = Scenario::builder()
        .num_objects(objects)
        .node_request_rate(rate)
        .duration(duration)
        .seed(SEED)
        .build()
        .expect("valid scenario");
    let workload = radar_bench::make_workload("zipf", objects, SEED);
    let recorder = SharedRecorder::from_recorder(Recorder::new(RING));
    let mut sim = Simulation::new(scenario, workload);
    sim.attach_observer(Box::new(recorder.clone()));
    let allocs_before = CountingAlloc::allocations();
    let start = Instant::now();
    let _ = sim.run();
    let wall = start.elapsed();
    let allocs = CountingAlloc::allocations() - allocs_before;
    let events = recorder.with(|r| r.len() as u64 + r.evicted());
    (events, wall, allocs)
}

fn main() {
    let test_only = std::env::args().any(|a| a == "--test");
    if test_only {
        let (events, _, allocs) = traced_run(16, 0.05, 60.0);
        assert!(events > 0, "traced run emitted no events");
        assert!(allocs > 0, "counting allocator observed nothing");
        println!("{:<44} ok (smoke)", "throughput/baseline");
        return;
    }

    // The run is deterministic per seed: events and allocations are
    // identical across repetitions, only wall time varies. Use the
    // median wall time — unlike the minimum, it doesn't enshrine a
    // one-off fast outlier as a baseline later runs can't reproduce.
    let mut events = 0u64;
    let mut allocs = u64::MAX;
    let mut walls = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let (e, wall, a) = traced_run(OBJECTS, RATE, DURATION);
        events = e;
        allocs = allocs.min(a);
        walls.push(wall);
    }
    walls.sort();
    let median = walls[REPS / 2];
    let row = ThroughputRow {
        events,
        events_per_sec: events as f64 / median.as_secs_f64(),
        allocations: allocs,
        allocations_per_event: allocs as f64 / events as f64,
    };

    let config = [
        ("objects", OBJECTS.to_string()),
        ("rate", format!("{RATE:.2}")),
        ("duration", format!("{DURATION:.1}")),
        ("seed", SEED.to_string()),
        ("ring", RING.to_string()),
        ("repetitions", REPS.to_string()),
    ];
    let json = throughput_baseline_json(&config, &row);

    // CARGO_MANIFEST_DIR is crates/bench; the baseline lives at the
    // workspace root next to BENCH_loop.json.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json");
    let verdict = match std::fs::read_to_string(&path) {
        Ok(previous) => throughput_gate(&previous, &row, TOLERANCE),
        Err(_) => Ok(()), // first baseline: nothing to gate against
    };
    if verdict.is_ok() {
        std::fs::write(&path, &json).expect("write BENCH_throughput.json");
        println!("wrote {}", path.display());
    }
    print!("{json}");
    if let Err(msg) = verdict {
        eprintln!("FAIL: {msg}");
        std::process::exit(1);
    }
}
