//! End-to-end throughput baseline and regression gate
//! (`BENCH_throughput.json`).
//!
//! Runs the simulator on the fixed loop-profile scenario (seed 42) with
//! the flight recorder attached — the configuration whose hot paths the
//! allocation-free work targets — and reports two whole-run numbers:
//!
//! * **events/sec** — flight-recorder events emitted per wall-clock
//!   second, best of the repetitions (a throughput proxy covering the
//!   entire event loop plus the tracing pipeline);
//! * **allocations/event** — allocator calls per emitted event, counted
//!   by [`radar_bench::timing::CountingAlloc`] (deterministic for a
//!   fixed seed, so it gates exactly).
//!
//! The same workload is then replayed through the sharded event loop
//! (`Simulation::run_sharded`) at 1, 2, and 4 shards, and the per-shard
//! events/sec recorded as the `"scaling"` section of the baseline —
//! the parallel-scaling curve `EXPERIMENTS.md` reads from.
//!
//! Before overwriting the committed baseline, the previous numbers are
//! read back and the run **fails** (exit 1) when events/sec regressed
//! by more than 10% (at the serial row or at any recorded shard count)
//! or allocations/event grew by more than 10% — the regression gate
//! `scripts/check.sh` and CI rely on.
//!
//! After the gate, one extra *profiled* run per scaling shard count
//! captures the shard telemetry (`Simulation::enable_shard_profile`) as
//! `BENCH_profile.json` — stall attribution for the exact runs the
//! scaling curve times. The profiled runs are excluded from the timed
//! repetitions, so profiling never perturbs the gated numbers.
//!
//! With `--test`, a miniature run executes once per mode (serial and
//! 2-shard) as a smoke test and nothing is written or gated.

use std::time::{Duration, Instant};

use radar_bench::timing::{
    throughput_baseline_json, throughput_gate_with_scaling, CountingAlloc, ScalingRow,
    ThroughputRow,
};
use radar_sim::obs::{Recorder, SharedRecorder};
use radar_sim::{Scenario, Simulation};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Fixed seed shared by every baseline run (same as the golden log).
const SEED: u64 = 42;
/// Same object count and seed as the `loop_profile` baseline, but a
/// hotter request rate: at 0.5 req/s the simulated inter-arrival gap
/// dwarfs every propagation bound, so consecutive redirects can never
/// share a hand-off batch and the batching telemetry measures nothing.
/// 8 req/s keeps several decisions in flight per commit window, which
/// is the regime the batched hand-off (and its p50 gate) exists for.
const OBJECTS: u32 = 64;
const RATE: f64 = 8.0;
const DURATION: f64 = 600.0;
const REPS: usize = 15;
/// Recorder ring for the traced run: small enough to reach the evicting
/// (steady-state) regime early, as a long-running deployment would.
const RING: usize = 4_096;
/// Tolerated regression before the gate fails, as a fraction.
const TOLERANCE: f64 = 0.10;

/// Multi-shard counts the scaling curve measures. The 1-shard point is
/// not re-measured: `run_sharded(1)` delegates to the serial loop, so
/// its row is the serial baseline number itself (re-timing the same
/// code path would only add a second noisy sample of one quantity).
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
/// Repetitions per scaling point — lighter than the serial baseline's
/// [`REPS`] because three shard counts multiply the cost (and the
/// multi-shard runs are wall-clock-expensive: they pay a channel round
/// trip per deferred decision).
const SCALING_REPS: usize = 8;

/// One traced run: returns events emitted, wall time, and allocator
/// calls over the run. `shards == 0` runs the serial loop
/// (`Simulation::run`); any other count goes through
/// `Simulation::run_sharded`. (Allocator calls are counted process-wide,
/// so the number covers shard worker threads too.)
fn traced_run(objects: u32, rate: f64, duration: f64, shards: usize) -> (u64, Duration, u64) {
    let scenario = Scenario::builder()
        .num_objects(objects)
        .node_request_rate(rate)
        .duration(duration)
        .seed(SEED)
        .build()
        .expect("valid scenario");
    let workload = radar_bench::make_workload("zipf", objects, SEED);
    let recorder = SharedRecorder::from_recorder(Recorder::new(RING));
    let mut sim = Simulation::new(scenario, workload);
    sim.attach_observer(Box::new(recorder.clone()));
    let allocs_before = CountingAlloc::allocations();
    let start = Instant::now();
    if shards == 0 {
        let _ = sim.run();
    } else {
        let _ = sim.run_sharded(shards);
    }
    let wall = start.elapsed();
    let allocs = CountingAlloc::allocations() - allocs_before;
    let events = recorder.with(|r| r.len() as u64 + r.evicted());
    (events, wall, allocs)
}

/// Best (minimum) wall time of `reps` identical runs at a given shard
/// count. The run is deterministic per seed, so the true cost is a
/// constant and scheduler noise is strictly additive: the minimum is
/// the stable estimator of that constant, where a median still carries
/// whatever noise hit the middle repetition (double-digit percent for
/// the ~20 ms serial run on a shared machine, enough to trip a 10%
/// gate on jitter alone).
fn best_wall(objects: u32, rate: f64, duration: f64, shards: usize, reps: usize) -> Duration {
    (0..reps)
        .map(|_| traced_run(objects, rate, duration, shards).1)
        .min()
        .expect("at least one repetition")
}

/// One profiled (untimed) run at `shards`, returning its shard profile.
/// Runs after the gate so the telemetry describes the same build and
/// scenario the baselines measure without contaminating their timings.
fn profiled_run(
    objects: u32,
    rate: f64,
    duration: f64,
    shards: usize,
) -> radar_sim::obs::ShardProfile {
    let scenario = Scenario::builder()
        .num_objects(objects)
        .node_request_rate(rate)
        .duration(duration)
        .seed(SEED)
        .build()
        .expect("valid scenario");
    let workload = radar_bench::make_workload("zipf", objects, SEED);
    let recorder = SharedRecorder::from_recorder(Recorder::new(RING));
    let mut sim = Simulation::new(scenario, workload);
    sim.attach_observer(Box::new(recorder.clone()));
    sim.enable_shard_profile();
    let report = sim.run_sharded(shards);
    report
        .shard_profile
        .expect("multi-shard profiled run collects a profile")
}

/// Serializes the profiled scaling runs as `BENCH_profile.json`:
/// `{"config": {...}, "profiles": [...]}` with one profile per shard
/// count, in [`SHARD_COUNTS`] order (readable via `radar perf`).
fn profile_artifact_json(
    config: &[(&str, String)],
    profiles: &[radar_sim::obs::ShardProfile],
) -> String {
    let config_obj = radar_sim::Json::Obj(
        config
            .iter()
            .map(|(k, v)| {
                let value = v
                    .parse::<f64>()
                    .map(radar_sim::Json::Num)
                    .unwrap_or_else(|_| radar_sim::Json::Str(v.clone()));
                ((*k).to_string(), value)
            })
            .collect(),
    );
    let doc = radar_sim::Json::Obj(vec![
        ("config".to_string(), config_obj),
        (
            "profiles".to_string(),
            radar_sim::Json::Arr(profiles.iter().map(radar_sim::shard_profile_json).collect()),
        ),
    ]);
    let mut out = doc.pretty();
    out.push('\n');
    out
}

fn main() {
    let test_only = std::env::args().any(|a| a == "--test");
    if test_only {
        let (events, _, allocs) = traced_run(16, 0.05, 60.0, 0);
        assert!(events > 0, "traced run emitted no events");
        assert!(allocs > 0, "counting allocator observed nothing");
        let (sharded_events, _, _) = traced_run(16, 0.05, 60.0, 2);
        assert_eq!(
            sharded_events, events,
            "2-shard smoke run emitted a different event count"
        );
        let profile = profiled_run(16, 0.05, 60.0, 2);
        assert!(
            profile.min_coverage() > 0.9,
            "profiled smoke run left wall-clock unattributed"
        );
        let artifact = profile_artifact_json(&[("objects", "16".to_string())], &[profile]);
        assert!(
            artifact.contains("\"profiles\""),
            "profile artifact missing profiles array"
        );
        println!("{:<44} ok (smoke)", "throughput/baseline");
        return;
    }

    // The run is deterministic per seed: events and allocations are
    // identical across repetitions, only wall time varies — and varies
    // only upward, by scheduler noise. Use the best (minimum) wall
    // time; see `best_wall` for why the median is too jittery to gate.
    let mut events = 0u64;
    let mut allocs = u64::MAX;
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let (e, wall, a) = traced_run(OBJECTS, RATE, DURATION, 0);
        events = e;
        allocs = allocs.min(a);
        best = best.min(wall);
    }
    let row = ThroughputRow {
        events,
        events_per_sec: events as f64 / best.as_secs_f64(),
        allocations: allocs,
        allocations_per_event: allocs as f64 / events as f64,
    };

    // The scaling curve: the same workload through the sharded loop at
    // each recorded shard count. Event counts are identical across all
    // of them (the sharded loop is byte-equivalent to serial), so
    // events/sec differences are pure wall-time differences. The
    // 1-shard point is the serial measurement itself (see SHARD_COUNTS).
    let mut scaling = vec![ScalingRow {
        shards: 1,
        events_per_sec: row.events_per_sec,
    }];
    scaling.extend(SHARD_COUNTS.iter().map(|&shards| {
        let wall = best_wall(OBJECTS, RATE, DURATION, shards, SCALING_REPS);
        ScalingRow {
            shards,
            events_per_sec: events as f64 / wall.as_secs_f64(),
        }
    }));

    // Logical cores of the measuring host: the scaling rows (and the
    // derived speedup/efficiency fields) are meaningless without it —
    // on a single-core runner even a perfect sharded loop cannot beat
    // serial, it can only stay close.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = [
        ("objects", OBJECTS.to_string()),
        ("rate", format!("{RATE:.2}")),
        ("duration", format!("{DURATION:.1}")),
        ("seed", SEED.to_string()),
        ("ring", RING.to_string()),
        ("repetitions", REPS.to_string()),
        ("scaling_repetitions", SCALING_REPS.to_string()),
        ("host_cores", host_cores.to_string()),
    ];
    let json = throughput_baseline_json(&config, &row, &scaling);

    // CARGO_MANIFEST_DIR is crates/bench; the baseline lives at the
    // workspace root next to BENCH_loop.json.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json");
    let verdict = match std::fs::read_to_string(&path) {
        Ok(previous) => throughput_gate_with_scaling(&previous, &row, &scaling, TOLERANCE),
        Err(_) => Ok(()), // first baseline: nothing to gate against
    };
    if verdict.is_ok() {
        std::fs::write(&path, &json).expect("write BENCH_throughput.json");
        println!("wrote {}", path.display());

        // One profiled run per scaling shard count, after the timed
        // repetitions so the telemetry overhead can't touch the gated
        // numbers. The artifact is `radar perf`-readable.
        let profiles: Vec<_> = SHARD_COUNTS
            .iter()
            .map(|&shards| profiled_run(OBJECTS, RATE, DURATION, shards))
            .collect();
        let profile_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_profile.json");
        std::fs::write(&profile_path, profile_artifact_json(&config, &profiles))
            .expect("write BENCH_profile.json");
        println!("wrote {}", profile_path.display());
    }
    print!("{json}");
    if let Err(msg) = verdict {
        eprintln!("FAIL: {msg}");
        std::process::exit(1);
    }
}
