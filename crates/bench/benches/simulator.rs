//! End-to-end simulator benchmarks: events/second of the full platform
//! and the substrate pieces it is built from. These bound how much
//! simulated time a unit of wall time buys, which is what determines the
//! cost of the paper-scale experiment suite.

use radar_bench::timing::{black_box, Bench};
use radar_sim::{Scenario, Simulation};
use radar_simcore::{EventQueue, FifoServer, SimDuration, SimTime};
use radar_workload::ZipfReeds;

/// Short full-platform runs (60 simulated seconds at paper request
/// rates) for each workload family.
fn bench_platform(b: &mut Bench) {
    for workload in ["zipf", "hot-pages", "regional"] {
        b.bench(&format!("platform_60s/{workload}"), || {
            let scenario = Scenario::builder()
                .num_objects(2_000)
                .duration(60.0)
                .seed(7)
                .build()
                .expect("valid scenario");
            let wl = radar_bench::make_workload(workload, 2_000, 7);
            black_box(Simulation::new(scenario, wl).run());
        });
    }
}

/// Raw event-queue throughput (schedule + pop), the DES inner loop.
fn bench_event_queue(b: &mut Bench) {
    b.bench("event_queue/schedule_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_micros(i * 37 % 50_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc);
    });
}

/// FIFO-server arithmetic, the per-request service-time computation.
fn bench_fifo_server(b: &mut Bench) {
    let mut server = FifoServer::new(SimDuration::from_millis(5.0));
    let mut t = SimTime::ZERO;
    b.bench("fifo_server/offer", || {
        t += SimDuration::from_micros(4_900);
        black_box(server.offer(t));
    });
}

/// Workload sampling cost (the Zipf closed form).
fn bench_workload_sampling(b: &mut Bench) {
    use radar_simcore::SimRng;
    use radar_simnet::NodeId;
    use radar_workload::Workload;
    let mut zipf = ZipfReeds::new(10_000);
    let mut rng = SimRng::seed_from(3);
    b.bench("workload/zipf_choose", || {
        black_box(zipf.choose(0.0, NodeId::new(0), &mut rng));
    });
}

fn main() {
    let mut b = Bench::from_args();
    bench_platform(&mut b);
    bench_event_queue(&mut b);
    bench_fifo_server(&mut b);
    bench_workload_sampling(&mut b);
}
