//! End-to-end simulator benchmarks: events/second of the full platform
//! and the substrate pieces it is built from. These bound how much
//! simulated time a unit of wall time buys, which is what determines the
//! cost of the paper-scale experiment suite.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radar_sim::{Scenario, Simulation};
use radar_simcore::{EventQueue, FifoServer, SimDuration, SimTime};
use radar_workload::ZipfReeds;

/// Short full-platform runs (60 simulated seconds at paper request
/// rates) for each workload family.
fn bench_platform(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform_60s");
    group.sample_size(10);
    for workload in ["zipf", "hot-pages", "regional"] {
        group.bench_with_input(BenchmarkId::from_parameter(workload), &workload, |b, &w| {
            b.iter(|| {
                let scenario = Scenario::builder()
                    .num_objects(2_000)
                    .duration(60.0)
                    .seed(7)
                    .build()
                    .expect("valid scenario");
                let wl = radar_bench::make_workload(w, 2_000, 7);
                black_box(Simulation::new(scenario, wl).run())
            });
        });
    }
    group.finish();
}

/// Raw event-queue throughput (schedule + pop), the DES inner loop.
fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_micros(i * 37 % 50_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        });
    });
}

/// FIFO-server arithmetic, the per-request service-time computation.
fn bench_fifo_server(c: &mut Criterion) {
    c.bench_function("fifo_server/offer", |b| {
        let mut server = FifoServer::new(SimDuration::from_millis(5.0));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(4_900);
            black_box(server.offer(t))
        });
    });
}

/// Workload sampling cost (the Zipf closed form).
fn bench_workload_sampling(c: &mut Criterion) {
    use radar_simcore::SimRng;
    use radar_simnet::NodeId;
    use radar_workload::Workload;
    c.bench_function("workload/zipf_choose", |b| {
        let mut zipf = ZipfReeds::new(10_000);
        let mut rng = SimRng::seed_from(3);
        b.iter(|| black_box(zipf.choose(0.0, NodeId::new(0), &mut rng)));
    });
}

criterion_group!(
    benches,
    bench_platform,
    bench_event_queue,
    bench_fifo_server,
    bench_workload_sampling
);
criterion_main!(benches);
