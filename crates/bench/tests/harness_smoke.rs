//! Smoke tests of the experiment harness at miniature scale: every
//! experiment function produces non-trivial output without panicking.
//! (The paper-scale numbers are produced by the `experiments` binary;
//! these tests guard the plumbing.)

use radar_bench::experiments::{self, Harness};
use radar_bench::ExpConfig;

fn micro() -> ExpConfig {
    ExpConfig {
        num_objects: 200,
        node_rate: 2.0,
        duration: 250.0,
        seed: 5,
        out_dir: None,
    }
}

#[test]
fn table1_lists_parameters() {
    let mut h = Harness::new(micro());
    let out = experiments::table1(&mut h);
    assert!(out.contains("Table 1"));
    assert!(out.contains("Deletion threshold"));
    assert!(out.contains("0.03"));
}

#[test]
fn figures_and_tables_share_cached_runs() {
    // fig7, fig8a and table2 all consume the same four dynamic runs; the
    // harness must simulate each workload once.
    let mut h = Harness::new(micro());
    let fig7 = experiments::fig7(&mut h);
    assert!(fig7.contains("hot-sites %"));
    let fig8a = experiments::fig8a(&mut h);
    assert!(fig8a.contains("peak loads"));
    let table2 = experiments::table2(&mut h);
    assert!(table2.contains("Average Number of Replicas"));
    // Four data rows, one per workload.
    let rows = table2.lines().filter(|l| l.contains("  ")).count();
    assert!(rows >= 4, "table2 output:\n{table2}");
}

#[test]
fn csv_series_written_when_requested() {
    let dir = std::env::temp_dir().join("radar-harness-smoke-csv");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = micro();
    cfg.out_dir = Some(dir.clone());
    let mut h = Harness::new(cfg);
    let _ = experiments::table2(&mut h);
    assert!(dir.join("table2.csv").exists());
    let body = std::fs::read_to_string(dir.join("table2.csv")).unwrap();
    assert!(body.lines().count() >= 5, "csv:\n{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_preload_matches_lazy_runs() {
    let mut lazy = Harness::new(micro());
    let lazy_table2 = experiments::table2(&mut lazy);
    let mut eager = Harness::new(micro());
    eager.preload_parallel();
    let eager_table2 = experiments::table2(&mut eager);
    assert_eq!(lazy_table2, eager_table2);
    // Preloading twice is a no-op.
    eager.preload_parallel();
}
