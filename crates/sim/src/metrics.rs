//! In-flight measurement collection.

use radar_stats::{BinSpec, OnlineSummary, P2Quantile, TimeSeries};

/// One Fig. 8b sample: a host's actual measured load together with the
/// protocol's upper and lower estimates at the same instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadEstimateSample {
    /// Sample time (seconds).
    pub t: f64,
    /// Measured load (requests/second over the last interval).
    pub actual: f64,
    /// Upper-limit estimate.
    pub upper: f64,
    /// Lower-limit estimate.
    pub lower: f64,
}

/// One entry in the relocation log: what a placement run did to one
/// object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocationAction {
    /// Proximity-driven migration.
    GeoMigrate,
    /// Proximity-driven replication.
    GeoReplicate,
    /// Offload migration.
    LoadMigrate,
    /// Offload replication.
    LoadReplicate,
    /// Replica dropped.
    Drop,
    /// Affinity unit shed, replica kept.
    AffinityReduce,
}

/// A timestamped relocation-log record (for debugging and analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocationEvent {
    /// Placement-run time (seconds).
    pub t: f64,
    /// The deciding host.
    pub host: u16,
    /// The object acted on.
    pub object: u32,
    /// The recipient node, when the action has one.
    pub target: Option<u16>,
    /// What happened.
    pub action: RelocationAction,
}

/// Everything the simulator measures while running. Finalized into a
/// [`crate::RunReport`] at the end of a run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Response traffic, bytes×hops per bin (the paper's bandwidth
    /// metric).
    pub client_bandwidth: TimeSeries,
    /// Relocation traffic (object copies), bytes×hops per bin (Fig. 7).
    pub overhead_bandwidth: TimeSeries,
    /// Provider-update propagation traffic, bytes×hops per bin (§5).
    pub update_bandwidth: TimeSeries,
    /// Response latency samples per bin (read means for Fig. 6).
    pub latency: TimeSeries,
    /// Maximum measured host load, sampled every measurement interval
    /// (Fig. 8a).
    pub max_load: TimeSeries,
    /// Load-estimate samples of the tracked host (Fig. 8b).
    pub load_estimates: Vec<LoadEstimateSample>,
    /// `(t, average physical replicas per object)` sampled at placement
    /// epochs (Table 2).
    pub replica_series: Vec<(f64, f64)>,
    /// Whole-run latency summary.
    pub latency_summary: OnlineSummary,
    /// Streaming median latency estimator.
    pub latency_p50: P2Quantile,
    /// Streaming 99th-percentile latency estimator.
    pub latency_p99: P2Quantile,
    /// Requests fully delivered.
    pub total_requests: u64,
    /// Geo-migrations performed.
    pub geo_migrations: u64,
    /// Geo-replications performed.
    pub geo_replications: u64,
    /// Offload migrations performed.
    pub offload_migrations: u64,
    /// Offload replications performed.
    pub offload_replications: u64,
    /// Replicas dropped.
    pub drops: u64,
    /// Affinity units shed without dropping a replica.
    pub affinity_reductions: u64,
    /// Full relocation log (one record per placement action).
    pub relocation_log: Vec<RelocationEvent>,
    /// Per load sample: `(t, node with the maximum load, that load)`.
    pub max_load_host: Vec<(f64, u16, f64)>,
    /// Requests handled per redirector, indexed by node id (sized by the
    /// platform at startup; zero for nodes that are not redirectors).
    /// Kept flat because it is bumped on every redirect — the report
    /// layer converts to a sparse map when summarizing.
    pub redirector_requests: Vec<u64>,
    /// Total bytes carried per backbone link (indexed like the
    /// topology's link list), all traffic classes combined.
    pub link_bytes: Vec<f64>,
    /// Response traffic between regions: `region_matrix[from][to]` is
    /// bytes×hops of responses served by a host in region `from` to a
    /// gateway in region `to` (regions indexed by `Region::index`).
    pub region_matrix: [[f64; 4]; 4],
    /// Redirect leg of each request's latency (gateway → redirector →
    /// host propagation).
    pub redirect_delay: OnlineSummary,
    /// Queueing delay at the serving host.
    pub queueing_delay: OnlineSummary,
    /// Response travel time (host → gateway, store-and-forward).
    pub response_travel: OnlineSummary,
    /// Provider updates propagated (§5).
    pub updates_propagated: u64,
    /// Provider updates per consistency class: `[type-1, type-2,
    /// type-3]`.
    pub updates_by_class: [u64; 3],
    /// Asynchronous update deliveries applied at replicas (type-1 and
    /// type-2 objects).
    pub update_deliveries: u64,
    /// Deliveries that found their target replica already gone.
    pub wasted_deliveries: u64,
    /// Commuting updates merged at type-2 replicas.
    pub updates_merged: u64,
    /// Per-replica staleness of applied type-1 deliveries (seconds).
    pub update_lag_type1: OnlineSummary,
    /// Per-replica staleness of applied type-2 deliveries (seconds).
    pub update_lag_type2: OnlineSummary,
    /// Times the primary copy had to be reassigned because its host no
    /// longer held the object.
    pub primary_reassignments: u64,
    /// Requests that could not be served because every candidate replica
    /// was crashed or unreachable (fault injection, §7 of DESIGN.md).
    pub failed_requests: u64,
    /// Requests salvaged by falling back to the object's primary copy
    /// after the redirector found no live regular replica.
    pub primary_fallbacks: u64,
    /// Replicas recreated by the catalog's re-replication sweep after a
    /// crash dropped an object below its minimum replica count.
    pub re_replications: u64,
    /// Total object-seconds spent with zero live replicas (summed over
    /// objects).
    pub unavailable_object_seconds: f64,
    /// Time from an object falling below its minimum replica count to
    /// the sweep restoring it (seconds).
    pub restore_time: OnlineSummary,
    /// Fault transitions (crash/recover/partition/heal/degrade) applied.
    pub faults_injected: u64,
}

impl Metrics {
    /// Creates empty metrics over `bin`-second bins for bandwidth and
    /// latency and `measurement_interval`-second bins for load.
    pub fn new(bin: f64, measurement_interval: f64) -> Self {
        Self {
            client_bandwidth: TimeSeries::new(BinSpec::new(bin)),
            overhead_bandwidth: TimeSeries::new(BinSpec::new(bin)),
            update_bandwidth: TimeSeries::new(BinSpec::new(bin)),
            latency: TimeSeries::new(BinSpec::new(bin)),
            max_load: TimeSeries::new(BinSpec::new(measurement_interval)),
            load_estimates: Vec::new(),
            replica_series: Vec::new(),
            latency_summary: OnlineSummary::new(),
            latency_p50: P2Quantile::new(0.5),
            latency_p99: P2Quantile::new(0.99),
            total_requests: 0,
            geo_migrations: 0,
            geo_replications: 0,
            offload_migrations: 0,
            offload_replications: 0,
            drops: 0,
            affinity_reductions: 0,
            relocation_log: Vec::new(),
            max_load_host: Vec::new(),
            redirector_requests: Vec::new(),
            link_bytes: Vec::new(),
            region_matrix: [[0.0; 4]; 4],
            redirect_delay: OnlineSummary::new(),
            queueing_delay: OnlineSummary::new(),
            response_travel: OnlineSummary::new(),
            updates_propagated: 0,
            updates_by_class: [0; 3],
            update_deliveries: 0,
            wasted_deliveries: 0,
            updates_merged: 0,
            update_lag_type1: OnlineSummary::new(),
            update_lag_type2: OnlineSummary::new(),
            primary_reassignments: 0,
            failed_requests: 0,
            primary_fallbacks: 0,
            re_replications: 0,
            unavailable_object_seconds: 0.0,
            restore_time: OnlineSummary::new(),
            faults_injected: 0,
        }
    }

    /// Records a delivered response: latency sample at delivery time and
    /// `bytes×hops` of client bandwidth at send time.
    pub fn record_response(
        &mut self,
        sent_at: f64,
        delivered_at: f64,
        latency: f64,
        bytes_hops: f64,
    ) {
        self.total_requests += 1;
        self.client_bandwidth.record(sent_at, bytes_hops);
        self.latency.record(delivered_at, latency);
        self.latency_summary.record(latency);
        self.latency_p50.record(latency);
        self.latency_p99.record(latency);
    }

    /// Records `bytes×hops` of relocation (overhead) traffic.
    pub fn record_overhead(&mut self, t: f64, bytes_hops: f64) {
        self.overhead_bandwidth.record(t, bytes_hops);
    }

    /// Records one propagated provider update and its traffic.
    /// `class` is the §5 taxonomy index (0 = type-1, 1 = type-2,
    /// 2 = type-3).
    pub fn record_update(
        &mut self,
        t: f64,
        bytes_hops: f64,
        reassigned_primary: bool,
        class: usize,
    ) {
        self.updates_propagated += 1;
        self.updates_by_class[class] += 1;
        self.update_bandwidth.record(t, bytes_hops);
        if reassigned_primary {
            self.primary_reassignments += 1;
        }
    }

    /// Records one asynchronous update delivery at a replica. `lag` is
    /// the replica's staleness window for this version; `wasted` means
    /// the target replica was gone by delivery time (the lag sample is
    /// then discarded — there is no replica to be stale). Type-2
    /// deliveries additionally count as merges.
    pub fn record_update_delivery(&mut self, class: usize, lag: f64, wasted: bool) {
        if wasted {
            self.wasted_deliveries += 1;
            return;
        }
        self.update_deliveries += 1;
        match class {
            0 => self.update_lag_type1.record(lag),
            1 => {
                self.update_lag_type2.record(lag);
                self.updates_merged += 1;
            }
            _ => {}
        }
    }

    /// Folds one host's placement outcome into the relocation counters
    /// and the relocation log.
    pub fn record_placement(
        &mut self,
        t: f64,
        host: u16,
        outcome: &radar_core::placement::PlacementOutcome,
    ) {
        self.geo_migrations += outcome.geo_migrations.len() as u64;
        self.geo_replications += outcome.geo_replications.len() as u64;
        self.offload_migrations += outcome.offload_migrations.len() as u64;
        self.offload_replications += outcome.offload_replications.len() as u64;
        self.drops += outcome.drops.len() as u64;
        self.affinity_reductions += outcome.affinity_reductions.len() as u64;
        let mut log =
            |object: radar_core::ObjectId, target: Option<u16>, action: RelocationAction| {
                self.relocation_log.push(RelocationEvent {
                    t,
                    host,
                    object: object.index() as u32,
                    target,
                    action,
                });
            };
        for &(x, p) in &outcome.geo_migrations {
            log(x, Some(p.index() as u16), RelocationAction::GeoMigrate);
        }
        for &(x, p) in &outcome.geo_replications {
            log(x, Some(p.index() as u16), RelocationAction::GeoReplicate);
        }
        for &(x, p) in &outcome.offload_migrations {
            log(x, Some(p.index() as u16), RelocationAction::LoadMigrate);
        }
        for &(x, p) in &outcome.offload_replications {
            log(x, Some(p.index() as u16), RelocationAction::LoadReplicate);
        }
        for &x in &outcome.drops {
            log(x, None, RelocationAction::Drop);
        }
        for &x in &outcome.affinity_reductions {
            log(x, None, RelocationAction::AffinityReduce);
        }
    }

    /// Total relocations (migrations + replications) so far.
    pub fn relocations(&self) -> u64 {
        self.geo_migrations
            + self.geo_replications
            + self.offload_migrations
            + self.offload_replications
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_recording_feeds_series_and_summary() {
        let mut m = Metrics::new(100.0, 20.0);
        m.record_response(10.0, 10.5, 0.5, 36_000.0);
        m.record_response(110.0, 110.3, 0.3, 24_000.0);
        assert_eq!(m.total_requests, 2);
        assert_eq!(m.client_bandwidth.bin_sum(0), 36_000.0);
        assert_eq!(m.client_bandwidth.bin_sum(1), 24_000.0);
        assert_eq!(m.latency_summary.mean(), Some(0.4));
        assert_eq!(m.latency.bin_mean(1), Some(0.3));
    }

    #[test]
    fn overhead_separate_from_client_traffic() {
        let mut m = Metrics::new(100.0, 20.0);
        m.record_overhead(5.0, 1000.0);
        assert_eq!(m.overhead_bandwidth.bin_sum(0), 1000.0);
        assert_eq!(m.client_bandwidth.bin_sum(0), 0.0);
    }

    #[test]
    fn placement_outcomes_counted() {
        use radar_core::placement::PlacementOutcome;
        use radar_core::ObjectId;
        use radar_simnet::NodeId;
        let mut m = Metrics::new(100.0, 20.0);
        let mut o = PlacementOutcome::default();
        o.geo_migrations.push((ObjectId::new(0), NodeId::new(1)));
        o.geo_replications.push((ObjectId::new(1), NodeId::new(2)));
        o.offload_migrations
            .push((ObjectId::new(2), NodeId::new(3)));
        o.drops = vec![ObjectId::new(3), ObjectId::new(4)];
        m.record_placement(100.0, 7, &o);
        assert_eq!(m.geo_migrations, 1);
        assert_eq!(m.geo_replications, 1);
        assert_eq!(m.offload_migrations, 1);
        assert_eq!(m.drops, 2);
        assert_eq!(m.relocations(), 3);
        assert_eq!(m.relocation_log.len(), 5);
        assert_eq!(m.relocation_log[0].action, RelocationAction::GeoMigrate);
        assert_eq!(m.relocation_log[0].host, 7);
    }
}
