//! The discrete-event hosting-platform sequencer.
//!
//! [`Simulation`] only owns state and sequences events; the actual
//! work lives in the layer modules:
//!
//! * routing — [`radar_simnet::RoutingView`] (incremental distances,
//!   paths, and reachability over the live links);
//! * directory — [`radar_core::Directory`] behind the [`Redirector`]
//!   (replica sets, affinities, request counts, batched epoch updates);
//! * redirect — [`crate::redirect::RedirectEngine`] (the Fig. 2
//!   decision with a per-(gateway, object) candidate cache);
//! * request lifecycle — `lifecycle.rs` (arrival → redirect → service
//!   → delivery handlers);
//! * placement — `env.rs` (the [`radar_core::placement::PlacementEnv`]
//!   wiring and periodic epochs);
//! * health — `health.rs` (fault transitions, declare-dead,
//!   re-replication).

use radar_core::{Catalog, HostState, ObjectId, Redirector};
use radar_obs::{LedgerConfig, LoopProfile, ShardProfile, SharedObjectLedger, SharedShardProfile};
use radar_simcore::{EventQueue, FifoServer, SimRng, SimTime};
use radar_simnet::{NodeId, RoutingView};
use radar_workload::{ArrivalProcess, Workload};

use std::collections::BTreeMap;

use crate::config::{InitialPlacement, PlacementMode, Scenario};
use crate::faults::{FaultState, FaultTransition};
use crate::metrics::Metrics;
use crate::observer::Observer;
use crate::placement_policy::{PlacementPolicy, RadarPlacement};
use crate::redirect::RedirectEngine;
use crate::report::RunReport;
use crate::selection::{RadarSelection, SelectionPolicy};
use crate::sink::EventSink;
use crate::trace::{Trace, TraceEntry};

/// Simulation events. Per client request: `Arrival` → `Redirect` →
/// `ArriveAtHost` → `ServiceComplete` (delivery statistics are computed
/// arithmetically at completion; no fourth hop event is needed).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// A client request enters at its gateway.
    Arrival { gateway: NodeId },
    /// The request reaches the redirector. `cause` is the
    /// flight-recorder sequence number of the arrival event (0 when
    /// tracing is off).
    Redirect {
        object: ObjectId,
        gateway: NodeId,
        t0: SimTime,
        cause: u64,
    },
    /// The request reaches the chosen host. `cause` chains to the
    /// redirector's decision event.
    ArriveAtHost {
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
        cause: u64,
    },
    /// The host finishes serving; the response departs. `epoch` is the
    /// host's crash epoch when the request entered service — a mismatch
    /// at completion means the host crashed underneath it.
    ServiceComplete {
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
        epoch: u32,
        cause: u64,
    },
    /// Periodic load measurement sampling (Fig. 8a / 8b).
    LoadSample,
    /// Periodic placement decision run on one host (Fig. 3). Hosts are
    /// phase-staggered across the placement period.
    Placement { host: NodeId },
    /// A content provider updates an object; the new version propagates
    /// from the primary copy to every replica (§5).
    ProviderUpdate,
    /// An asynchronously propagated provider update reaches one replica
    /// (§5, type-1/type-2 objects). `issued` is the provider-update
    /// time, so `t − issued` is the replica's staleness window for this
    /// version.
    UpdateDeliver {
        object: ObjectId,
        target: NodeId,
        version: u64,
        issued: SimTime,
    },
    /// The next entry of a replayed trace arrives at its gateway.
    TraceArrival { index: usize },
    /// The next scheduled fault transition fires.
    Fault { index: usize },
    /// A crashed host has been down for the declare-dead timeout; if it
    /// is still down (and this is not a stale timer from an earlier
    /// crash — `epoch` guards that), its replicas are purged and
    /// re-replicated elsewhere.
    DeclareDead { host: NodeId, epoch: u32 },
}

impl Event {
    /// Stable handler label for event-loop profiling
    /// ([`Simulation::enable_loop_profile`]).
    fn label(&self) -> &'static str {
        match self {
            Event::Arrival { .. } => "arrival",
            Event::Redirect { .. } => "redirect",
            Event::ArriveAtHost { .. } => "arrive-at-host",
            Event::ServiceComplete { .. } => "service-complete",
            Event::LoadSample => "load-sample",
            Event::Placement { .. } => "placement",
            Event::ProviderUpdate => "provider-update",
            Event::UpdateDeliver { .. } => "update-deliver",
            Event::TraceArrival { .. } => "trace-arrival",
            Event::Fault { .. } => "fault",
            Event::DeclareDead { .. } => "declare-dead",
        }
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
///
/// See the crate documentation for the modeled request lifecycle. Every
/// run is a deterministic function of `(Scenario, workload, selection)` —
/// the scenario carries the RNG seed.
pub struct Simulation {
    pub(crate) scenario: Scenario,
    /// Routing layer: incremental distances/paths over the live links.
    pub(crate) view: RoutingView,
    /// Homes of the hash-partitioned redirectors, most central first.
    pub(crate) redirector_nodes: Vec<NodeId>,
    /// Region of each node, by node index.
    pub(crate) node_regions: Vec<radar_simnet::Region>,
    pub(crate) workload: Box<dyn Workload + Send>,
    pub(crate) selection: Box<dyn SelectionPolicy + Send>,
    pub(crate) placement_policy: Box<dyn PlacementPolicy + Send>,
    pub(crate) hosts: Vec<HostState>,
    pub(crate) servers: Vec<FifoServer>,
    pub(crate) redirector: Redirector,
    /// Decision layer: Fig. 2 with a per-(gateway, object) candidate
    /// cache (engaged when the selection policy supports it).
    pub(crate) redirect: RedirectEngine,
    pub(crate) catalog: Catalog,
    pub(crate) metrics: Metrics,
    pub(crate) rng: SimRng,
    pub(crate) queue: EventQueue<Event>,
    /// One arrival process per gateway.
    pub(crate) arrivals: Vec<ArrivalProcess>,
    /// Whether bootstrap (initial placement + first events) has run.
    pub(crate) started: bool,
    /// Redirects handed to worker shards but not yet committed back into
    /// the queue: each will push exactly one `ArriveAtHost`. Always 0 in
    /// the serial loop; the sharded sequencer keeps it current so
    /// [`depth`](Self::depth) reports the queue depth a serial run would
    /// see at the same point in the event order.
    pub(crate) pending_push_estimate: u32,
    /// Upper bound on how many consecutive deferred redirects the
    /// sharded sequencer coalesces into one hand-off run. `None` (the
    /// default) lets runs grow as far as the determinism floor allows;
    /// `Some(1)` forces the pre-batching one-item-per-message behavior
    /// (the equivalence tests pin both against serial).
    pub(crate) shard_batch_cap: Option<usize>,
    /// Attached observers plus the flight-recorder state.
    pub(crate) events: EventSink,
    /// Event-loop profiling accumulator; `None` until
    /// [`enable_loop_profile`](Simulation::enable_loop_profile).
    profile: Option<LoopProfile>,
    /// Live per-shard telemetry handle; `None` until
    /// [`enable_shard_profile`](Simulation::enable_shard_profile). The
    /// sharded loop publishes snapshots here at every epoch barrier so
    /// a dashboard can render stall attribution mid-run.
    pub(crate) shard_profile_live: Option<SharedShardProfile>,
    /// Completed per-shard telemetry, moved into
    /// [`RunReport::shard_profile`] at finalization.
    pub(crate) shard_profile: Option<ShardProfile>,
    /// Protocol-health ledger handle; `None` until
    /// [`enable_object_ledger`](Simulation::enable_object_ledger). The
    /// ledger folds the same ordered event feed every observer sees, so
    /// it works identically in serial and sharded runs.
    pub(crate) object_ledger: Option<SharedObjectLedger>,
    /// The load-report board (§4.2.2 / the TR's recipient discovery):
    /// "hosts periodically exchange load reports, so that each host
    /// knows a few probable candidates." Each entry is the host's last
    /// *published* upper-estimate load and its publication time; offload
    /// recipient discovery reads these possibly-stale reports, while
    /// `CreateObj` admission remains authoritative at the recipient.
    pub(crate) load_reports: Vec<(f64, f64)>,
    /// Replay source: when set, arrivals come from this trace instead of
    /// the arrival processes + workload.
    pub(crate) replay: Option<Trace>,
    /// Capture sink: when enabled, every arrival is recorded.
    pub(crate) recorded: Option<Vec<TraceEntry>>,
    /// Compiled fault schedule, time-sorted (empty on fault-free runs).
    pub(crate) fault_schedule: Vec<FaultTransition>,
    /// Live fault state replayed from the schedule.
    pub(crate) fault_state: FaultState,
    /// Bumped on every applied fault transition; part of the redirect
    /// engine's cache key (host liveness changes replica usability
    /// without touching routing).
    pub(crate) fault_gen: u32,
    /// Per-host crash epoch. Completions carry the epoch they entered
    /// service under, so work queued before a crash is seen as lost.
    pub(crate) host_epoch: Vec<u32>,
    /// Hosts the platform has declared dead (replicas purged; the host
    /// rejoins empty if it ever recovers).
    pub(crate) declared_dead: Vec<bool>,
    /// Objects currently below the replica floor → when they fell below.
    pub(crate) below_min_since: BTreeMap<u32, f64>,
    /// Objects with zero live replicas → when they lost the last one.
    pub(crate) unavailable_since: BTreeMap<u32, f64>,
    /// Reusable working memory for the core placement algorithms.
    pub(crate) placement_scratch: radar_core::placement::PlacementScratch,
    /// Reusable placement outcome, cleared and refilled each epoch.
    pub(crate) placement_outcome: radar_core::placement::PlacementOutcome,
    /// Reusable host-liveness snapshot taken at each placement epoch.
    pub(crate) alive_scratch: Vec<bool>,
    /// Reusable offload-recipient candidate buffer.
    pub(crate) offload_probe_scratch: Vec<(f64, usize)>,
    /// Persistent placeholder swapped into the deciding host's slot for
    /// the duration of a placement epoch.
    pub(crate) spare_host: HostState,
    /// Reusable Fig. 2 decision snapshot filled by the redirect path
    /// when tracing, so explained choices allocate nothing per request.
    pub(crate) explain_scratch: radar_core::ChoiceExplanation,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("workload", &self.workload.name())
            .field("policy", &self.selection.name())
            .field("nodes", &self.hosts.len())
            .field("objects", &self.scenario.num_objects)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates a simulation with the protocol's own request distribution
    /// algorithm.
    pub fn new(scenario: Scenario, workload: Box<dyn Workload + Send>) -> Self {
        Self::with_selection(scenario, workload, Box::new(RadarSelection::new()))
    }

    /// Creates a simulation with a custom replica-selection policy
    /// (e.g. a baseline from `radar-baselines`) and the protocol's own
    /// placement algorithm.
    pub fn with_selection(
        scenario: Scenario,
        workload: Box<dyn Workload + Send>,
        selection: Box<dyn SelectionPolicy + Send>,
    ) -> Self {
        Self::with_policies(
            scenario,
            workload,
            selection,
            Box::new(RadarPlacement::new()),
        )
    }

    /// Creates a simulation with custom replica-selection *and*
    /// replica-placement policies — the full pluggable surface for
    /// head-to-head baseline comparisons.
    pub fn with_policies(
        scenario: Scenario,
        workload: Box<dyn Workload + Send>,
        selection: Box<dyn SelectionPolicy + Send>,
        placement_policy: Box<dyn PlacementPolicy + Send>,
    ) -> Self {
        let view = RoutingView::new(scenario.topology.clone());
        let n = scenario.topology.len();
        // "The redirector is co-located with a node whose average
        // distance in hops to other nodes is minimum" (§6.1); with more
        // than one redirector the URL namespace is hash-partitioned over
        // the most central nodes (§2).
        let redirector_nodes: Vec<NodeId> = view
            .table()
            .nodes_by_centrality()
            .into_iter()
            .take(scenario.num_redirectors as usize)
            .collect();
        let node_regions: Vec<radar_simnet::Region> = scenario
            .topology
            .nodes()
            .map(|n| scenario.topology.region(n))
            .collect();
        let hosts = scenario
            .topology
            .nodes()
            .map(|node| {
                let mut host = HostState::new(node, scenario.params_of(node.index()));
                if let Some(limit) = scenario.storage_limit {
                    host.set_storage_limit(limit as usize);
                }
                host
            })
            .collect();
        let servers = (0..n)
            .map(|i| FifoServer::with_capacity(scenario.capacity_of(i)))
            .collect();
        let redirector =
            Redirector::new(scenario.num_objects, scenario.params.distribution_constant);
        let redirect = RedirectEngine::new(scenario.num_objects, n);
        let catalog = scenario.catalog.clone().unwrap_or_else(|| {
            Catalog::uniform(scenario.num_objects, scenario.object_size, n as u16)
        });
        let mut metrics = Metrics::new(scenario.metric_bin, scenario.params.measurement_interval);
        metrics.link_bytes = vec![0.0; scenario.topology.links().len()];
        metrics.redirector_requests = vec![0; n];
        let rng = SimRng::seed_from(scenario.seed);
        let fault_schedule = scenario.faults.transitions(scenario.duration);
        let arrivals = (0..n)
            .map(|i| {
                let rate = scenario
                    .node_request_rates
                    .as_ref()
                    .map_or(scenario.node_request_rate, |rates| rates[i]);
                if scenario.poisson_arrivals {
                    ArrivalProcess::Poisson { rate }
                } else {
                    ArrivalProcess::Deterministic { rate }
                }
            })
            .collect();
        Self {
            scenario,
            view,
            redirector_nodes,
            node_regions,
            workload,
            selection,
            placement_policy,
            hosts,
            servers,
            redirector,
            redirect,
            catalog,
            metrics,
            rng,
            queue: EventQueue::new(),
            arrivals,
            started: false,
            pending_push_estimate: 0,
            shard_batch_cap: None,
            events: EventSink::new(),
            profile: None,
            shard_profile_live: None,
            shard_profile: None,
            object_ledger: None,
            load_reports: vec![(0.0, 0.0); n],
            replay: None,
            recorded: None,
            fault_schedule,
            fault_state: FaultState::new(n),
            fault_gen: 0,
            host_epoch: vec![0; n],
            declared_dead: vec![false; n],
            below_min_since: BTreeMap::new(),
            unavailable_since: BTreeMap::new(),
            placement_scratch: radar_core::placement::PlacementScratch::default(),
            placement_outcome: radar_core::placement::PlacementOutcome::default(),
            alive_scratch: Vec::new(),
            offload_probe_scratch: Vec::new(),
            spare_host: HostState::new(NodeId::new(0), radar_core::Params::paper()),
            explain_scratch: radar_core::ChoiceExplanation::default(),
        }
    }

    /// Creates a simulation that replays a captured [`Trace`] instead of
    /// generating arrivals from a workload — the paper's companion
    /// trace-driven mode. The scenario's request-rate settings are
    /// ignored; object ids in the trace must be within
    /// `scenario.num_objects` and gateways within the topology.
    ///
    /// # Panics
    ///
    /// Panics if the trace references an out-of-range gateway or object.
    pub fn replay(scenario: Scenario, trace: Trace) -> Self {
        for (i, e) in trace.entries().iter().enumerate() {
            assert!(
                (e.gateway as usize) < scenario.topology.len(),
                "trace entry {i}: gateway {} out of range",
                e.gateway
            );
            assert!(
                e.object < scenario.num_objects,
                "trace entry {i}: object {} out of range",
                e.object
            );
        }
        let mut sim = Self::with_selection(
            scenario,
            Box::new(NullWorkload),
            Box::new(RadarSelection::new()),
        );
        sim.replay = Some(trace);
        sim
    }

    /// Enables arrival capture: the finished report's
    /// [`RunReport::trace`] will hold every request arrival, replayable
    /// via [`Simulation::replay`].
    pub fn record_trace(&mut self) {
        self.recorded = Some(Vec::new());
    }

    /// Attaches an [`Observer`] receiving a live feed of simulation
    /// events. Multiple observers are invoked in attachment order.
    ///
    /// Attaching an observer whose [`Observer::wants_events`] returns
    /// `true` (e.g. a [`radar_obs::Recorder`]) switches on the flight
    /// recorder: the platform then builds and delivers the typed
    /// [`radar_obs::Event`] feed — decision snapshots, placement
    /// explanations, causal parents.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.events.tracing |= observer.wants_events();
        self.events.observers.push(observer);
    }

    /// Enables event-loop profiling: each handled event is timed and
    /// binned by type, together with queue-depth samples. The profile
    /// is delivered to observers via [`Observer::on_loop_profile`] and
    /// returned in [`RunReport::loop_profile`]. Wall-clock numbers stay
    /// out of the event stream and the report JSON, so profiling never
    /// perturbs determinism of recorded outputs.
    pub fn enable_loop_profile(&mut self) {
        self.profile = Some(LoopProfile::new());
    }

    /// Enables per-shard telemetry for [`Simulation::run_sharded`]:
    /// span accounting (busy / channel-wait /
    /// barrier-drain / reunite / idle) on the sequencer and every
    /// worker, hand-off latency and batch-size histograms, barrier
    /// counters by cause, and candidate-cache hit/miss tallies. The
    /// returned handle yields live snapshots (published at every epoch
    /// barrier) for dashboards; the completed profile lands in
    /// [`RunReport::shard_profile`]. Like loop profiling, all numbers
    /// stay out of the deterministic event stream. Serial runs (and
    /// `run_sharded(1)`'s serial fallback) collect nothing.
    pub fn enable_shard_profile(&mut self) -> SharedShardProfile {
        let live = SharedShardProfile::new();
        self.shard_profile_live = Some(live.clone());
        live
    }

    /// Caps how many consecutive deferred redirects
    /// [`run_sharded`](Simulation::run_sharded) coalesces into one
    /// batched hand-off. `None` (the default) leaves runs bounded only
    /// by the determinism floor; `Some(1)` reproduces the pre-batching
    /// one-item-per-message hand-off. Any cap yields byte-identical
    /// outputs — the cap trades hand-off amortization against worker
    /// wake-up latency, nothing observable.
    pub fn set_shard_batch_cap(&mut self, cap: Option<usize>) {
        self.shard_batch_cap = cap;
    }

    /// Enables the protocol-health ledger: a
    /// [`radar_obs::ObjectLedger`] is attached as an observer, folding
    /// the flight-recorder feed into per-object replica timelines, an
    /// online replica-set-invariant audit, and churn/cost attribution.
    /// The returned handle yields live [`radar_obs::ProtocolHealth`]
    /// snapshots mid-run (the dashboard's protocol panel reads it);
    /// the final snapshot lands in [`RunReport::protocol_health`].
    ///
    /// The ledger prices relocations at the scenario's object size and
    /// uses two placement periods as its churn window. Attaching it
    /// switches on event tracing (the feed it folds), but — like every
    /// observer — consumes no randomness and never alters outcomes:
    /// recorded event logs stay byte-identical either way.
    pub fn enable_object_ledger(&mut self) -> SharedObjectLedger {
        let ledger = SharedObjectLedger::new(LedgerConfig {
            object_size: self.scenario.object_size,
            churn_window: 2.0 * self.scenario.params.placement_period,
            ..LedgerConfig::default()
        });
        self.attach_observer(Box::new(ledger.clone()));
        self.object_ledger = Some(ledger.clone());
        ledger
    }

    /// The nodes hosting the redirectors (the most central nodes; one
    /// per hash partition).
    pub fn redirector_nodes(&self) -> &[NodeId] {
        &self.redirector_nodes
    }

    /// The redirector responsible for `object` (URL-hash partitioning,
    /// §2 — here the hash is the object id).
    pub(crate) fn redirector_node_of(&self, object: ObjectId) -> NodeId {
        self.redirector_nodes[object.index() % self.redirector_nodes.len()]
    }

    /// Runs the simulation to the configured duration and returns the
    /// finalized report.
    pub fn run(mut self) -> RunReport {
        self.run_until(self.scenario.duration);
        self.finish()
    }

    /// Advances the simulation to simulated time `t` seconds (clamped to
    /// the scenario duration), then pauses so intermediate state can be
    /// inspected via [`host`](Self::host), [`redirector`](Self::redirector)
    /// and [`now`](Self::now). Running in stages is exactly equivalent to
    /// one [`run`](Self::run) call.
    pub fn run_until(&mut self, t: f64) {
        if !self.started {
            self.bootstrap();
            self.started = true;
        }
        let end = SimTime::from_secs(t.min(self.scenario.duration).max(0.0));
        while let Some(next) = self.queue.peek_time() {
            if next > end {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.dispatch(t, ev);
        }
    }

    /// Handles one popped event, timing it into the loop profile when
    /// profiling is on. Shared by the serial loop and the sharded
    /// sequencer's inline-handling paths, so `--profile` attributes
    /// per-handler wall time identically in both modes.
    pub(crate) fn dispatch(&mut self, t: SimTime, ev: Event) {
        if self.profile.is_some() {
            let label = ev.label();
            let depth = self.queue.len() as u32;
            let started = std::time::Instant::now();
            self.handle(t, ev);
            let nanos = started.elapsed().as_nanos() as u64;
            if let Some(profile) = &mut self.profile {
                profile.record(label, nanos, depth);
            }
        } else {
            self.handle(t, ev);
        }
    }

    /// Current simulated time in seconds (the timestamp of the last
    /// processed event; 0 before the simulation starts).
    pub fn now(&self) -> f64 {
        self.queue.now().as_secs()
    }

    /// The protocol state of one host, for mid-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn host(&self, node: NodeId) -> &HostState {
        &self.hosts[node.index()]
    }

    /// The redirector's replica bookkeeping, for mid-run inspection.
    pub fn redirector(&self) -> &Redirector {
        &self.redirector
    }

    /// Finalizes a (possibly partially run) simulation into its report.
    pub fn finish(self) -> RunReport {
        self.finalize()
    }

    pub(crate) fn bootstrap(&mut self) {
        // Initial object placement.
        match self.scenario.initial_placement.clone() {
            InitialPlacement::RoundRobin => {
                let n = self.hosts.len() as u32;
                for i in 0..self.scenario.num_objects {
                    let node = NodeId::new((i % n) as u16);
                    self.install(ObjectId::new(i), node);
                }
            }
            InitialPlacement::Everywhere => {
                for i in 0..self.scenario.num_objects {
                    for node in 0..self.hosts.len() as u16 {
                        self.install(ObjectId::new(i), NodeId::new(node));
                    }
                }
            }
            InitialPlacement::Explicit(assignments) => {
                for (i, nodes) in assignments.iter().enumerate() {
                    for &node in nodes {
                        self.install(ObjectId::new(i as u32), NodeId::new(node));
                    }
                }
            }
        }
        let num_nodes = self.hosts.len();
        if let Some(trace) = &self.replay {
            if let Some(first) = trace.entries().first() {
                self.queue.schedule(
                    SimTime::from_secs(first.t),
                    Event::TraceArrival { index: 0 },
                );
            }
        } else {
            // One arrival stream per gateway, phase-staggered so the
            // constant-rate sources are not lock-stepped.
            for i in 0..num_nodes {
                let offset = self.arrivals[i].phase_offset(i, num_nodes);
                self.queue.schedule(
                    SimTime::from_secs(offset),
                    Event::Arrival {
                        gateway: NodeId::new(i as u16),
                    },
                );
            }
        }
        // Timers.
        self.queue.schedule(
            SimTime::from_secs(self.scenario.params.measurement_interval),
            Event::LoadSample,
        );
        if self.scenario.update_rate > 0.0 {
            let gap = self.rng.exponential(self.scenario.update_rate);
            self.queue
                .schedule(SimTime::from_secs(gap), Event::ProviderUpdate);
        }
        if self.scenario.placement == PlacementMode::Dynamic {
            // Hosts run their placement decisions periodically but not in
            // lock-step: host i fires at period·(1 + (i+1)/n)·…, spreading
            // the runs across the period so admission estimates and load
            // measurements refresh between consecutive deciders.
            let period = self.scenario.params.placement_period;
            for i in 0..num_nodes {
                let phase = period + period * (i + 1) as f64 / num_nodes as f64;
                self.queue.schedule(
                    SimTime::from_secs(phase),
                    Event::Placement {
                        host: NodeId::new(i as u16),
                    },
                );
            }
        }
        if let Some(first) = self.fault_schedule.first() {
            self.queue
                .schedule(SimTime::from_secs(first.t), Event::Fault { index: 0 });
        }
    }

    pub(crate) fn install(&mut self, object: ObjectId, node: NodeId) {
        self.redirector.install(object, node);
        self.hosts[node.index()].install_object(object);
    }

    /// Recorder-visible queue depth: the scheduled events plus the
    /// `ArriveAtHost` pushes owed by redirects still in flight on worker
    /// shards. Equals `queue.len()` in the serial loop, and is invariant
    /// to commit timing in the sharded loop (each commit pushes one event
    /// and decrements the estimate), so emitted `queue_depth` values
    /// match the serial run exactly.
    pub(crate) fn depth(&self) -> u32 {
        self.queue.len() as u32 + self.pending_push_estimate
    }

    pub(crate) fn handle(&mut self, t: SimTime, ev: Event) {
        match ev {
            Event::Arrival { gateway } => self.on_arrival(t, gateway),
            Event::Redirect {
                object,
                gateway,
                t0,
                cause,
            } => self.on_redirect(t, object, gateway, t0, cause),
            Event::ArriveAtHost {
                object,
                gateway,
                host,
                t0,
                cause,
            } => self.on_arrive_at_host(t, object, gateway, host, t0, cause),
            Event::ServiceComplete {
                object,
                gateway,
                host,
                t0,
                epoch,
                cause,
            } => self.on_service_complete(t, object, gateway, host, t0, epoch, cause),
            Event::LoadSample => self.on_load_sample(t),
            Event::Placement { host } => self.on_placement(t, host),
            Event::ProviderUpdate => self.on_provider_update(t),
            Event::UpdateDeliver {
                object,
                target,
                version,
                issued,
            } => self.on_update_deliver(t, object, target, version, issued),
            Event::TraceArrival { index } => self.on_trace_arrival(t, index),
            Event::Fault { index } => self.on_fault(t, index),
            Event::DeclareDead { host, epoch } => self.on_declare_dead(t, host, epoch),
        }
    }

    /// Debug-build check of the protocol's replica-set subset invariant:
    /// every replica the redirector knows physically exists on its host.
    pub(crate) fn debug_check_invariants(&self) {
        if cfg!(debug_assertions) {
            for i in 0..self.scenario.num_objects {
                let object = ObjectId::new(i);
                for info in self.redirector.replicas(object) {
                    debug_assert!(
                        self.hosts[info.host.index()].has_object(object),
                        "replica-set invariant violated: redirector lists {object}@{} \
                         but the host does not hold it",
                        info.host
                    );
                }
                // Crashes can transiently leave an object with no
                // replicas (until the sweep restores it), so the
                // last-replica invariant only holds on fault-free runs.
                debug_assert!(
                    self.redirector.replica_count(object) >= 1 || !self.scenario.faults.is_empty(),
                    "object {object} lost its last replica"
                );
            }
        }
    }

    fn finalize(mut self) -> RunReport {
        // Close the unavailability intervals still open at the end of
        // the run (replica-floor intervals never restored stay out of
        // the restore-time distribution: they have no restore).
        let end = self.scenario.duration;
        for (_, since) in std::mem::take(&mut self.unavailable_since) {
            self.metrics.unavailable_object_seconds += end - since;
        }
        let final_replicas = (0..self.scenario.num_objects)
            .map(|i| {
                self.redirector
                    .replicas(ObjectId::new(i))
                    .iter()
                    .map(|r| (r.host.index() as u16, r.aff))
                    .collect()
            })
            .collect();
        let link_traffic: Vec<((u16, u16), f64)> = self
            .scenario
            .topology
            .links()
            .iter()
            .zip(&self.metrics.link_bytes)
            .map(|(&(a, b), &bytes)| ((a.index() as u16, b.index() as u16), bytes))
            .collect();
        let profile = self.profile.take();
        if let Some(profile) = &profile {
            for obs in &mut self.events.observers {
                obs.on_loop_profile(profile);
            }
        }
        if let Some(stats) = self.events.reorder_stats() {
            for obs in &mut self.events.observers {
                obs.on_reorder_stats(&stats);
            }
        }
        let mut report = RunReport::from_metrics(
            self.metrics,
            self.workload.name().to_string(),
            self.selection.name().to_string(),
            self.placement_policy.name().to_string(),
            self.scenario.placement == PlacementMode::Dynamic,
            self.scenario.duration,
        );
        report.final_replicas = final_replicas;
        report.link_traffic = link_traffic;
        report.trace = self
            .recorded
            .map(|entries| entries.into_iter().collect::<Trace>());
        report.loop_profile = profile;
        report.shard_profile = self.shard_profile;
        if let Some(ledger) = &self.object_ledger {
            ledger.finalize(end);
            report.protocol_health = Some(ledger.health());
        }
        report
    }
}

/// Placeholder workload for replay mode (never consulted: arrivals come
/// from the trace).
#[derive(Debug)]
struct NullWorkload;

impl Workload for NullWorkload {
    fn choose(&mut self, _now: f64, _gateway: NodeId, _rng: &mut SimRng) -> ObjectId {
        unreachable!("replay mode never samples a workload")
    }

    fn name(&self) -> &str {
        "replay"
    }
}
