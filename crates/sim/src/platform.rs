//! The discrete-event hosting-platform simulation.

use radar_core::placement::{handle_create_obj, run_placement, PlacementEnv};
use radar_core::{Catalog, CreateObjRequest, CreateObjResponse, HostState, ObjectId, Redirector};
use radar_simcore::{EventQueue, FifoServer, SimDuration, SimRng, SimTime};
use radar_simnet::{NodeId, RoutingTable};
use radar_workload::{ArrivalProcess, Workload};

use crate::config::{InitialPlacement, PlacementMode, Scenario};
use crate::metrics::{LoadEstimateSample, Metrics};
use crate::observer::{Observer, RequestRecord};
use crate::report::RunReport;
use crate::selection::{RadarSelection, SelectionPolicy};
use crate::trace::{Trace, TraceEntry};

/// Simulation events. Per client request: `Arrival` → `Redirect` →
/// `ArriveAtHost` → `ServiceComplete` (delivery statistics are computed
/// arithmetically at completion; no fourth hop event is needed).
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A client request enters at its gateway.
    Arrival { gateway: NodeId },
    /// The request reaches the redirector.
    Redirect {
        object: ObjectId,
        gateway: NodeId,
        t0: SimTime,
    },
    /// The request reaches the chosen host.
    ArriveAtHost {
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
    },
    /// The host finishes serving; the response departs.
    ServiceComplete {
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
    },
    /// Periodic load measurement sampling (Fig. 8a / 8b).
    LoadSample,
    /// Periodic placement decision run on one host (Fig. 3). Hosts are
    /// phase-staggered across the placement period.
    Placement { host: NodeId },
    /// A content provider updates an object; the new version propagates
    /// from the primary copy to every replica (§5).
    ProviderUpdate,
    /// The next entry of a replayed trace arrives at its gateway.
    TraceArrival { index: usize },
}

/// A configured simulation, ready to [`run`](Simulation::run).
///
/// See the crate documentation for the modeled request lifecycle. Every
/// run is a deterministic function of `(Scenario, workload, selection)` —
/// the scenario carries the RNG seed.
pub struct Simulation {
    scenario: Scenario,
    routes: RoutingTable,
    /// `paths[from][to]`: precomputed node sequences, `from` inclusive.
    paths: Vec<Vec<Vec<NodeId>>>,
    /// Homes of the hash-partitioned redirectors, most central first.
    redirector_nodes: Vec<NodeId>,
    /// Link id for each normalized `(min, max)` node pair.
    link_index: std::collections::HashMap<(u16, u16), usize>,
    /// Region of each node, by node index.
    node_regions: Vec<radar_simnet::Region>,
    workload: Box<dyn Workload + Send>,
    selection: Box<dyn SelectionPolicy + Send>,
    hosts: Vec<HostState>,
    servers: Vec<FifoServer>,
    redirector: Redirector,
    catalog: Catalog,
    metrics: Metrics,
    rng: SimRng,
    queue: EventQueue<Event>,
    /// One arrival process per gateway.
    arrivals: Vec<ArrivalProcess>,
    /// Whether bootstrap (initial placement + first events) has run.
    started: bool,
    observers: Vec<Box<dyn Observer>>,
    /// The load-report board (§4.2.2 / the TR's recipient discovery):
    /// "hosts periodically exchange load reports, so that each host
    /// knows a few probable candidates." Each entry is the host's last
    /// *published* upper-estimate load and its publication time; offload
    /// recipient discovery reads these possibly-stale reports, while
    /// `CreateObj` admission remains authoritative at the recipient.
    load_reports: Vec<(f64, f64)>,
    /// Replay source: when set, arrivals come from this trace instead of
    /// the arrival processes + workload.
    replay: Option<Trace>,
    /// Capture sink: when enabled, every arrival is recorded.
    recorded: Option<Vec<TraceEntry>>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("workload", &self.workload.name())
            .field("policy", &self.selection.name())
            .field("nodes", &self.hosts.len())
            .field("objects", &self.scenario.num_objects)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates a simulation with the protocol's own request distribution
    /// algorithm.
    pub fn new(scenario: Scenario, workload: Box<dyn Workload + Send>) -> Self {
        Self::with_selection(scenario, workload, Box::new(RadarSelection::new()))
    }

    /// Creates a simulation with a custom replica-selection policy
    /// (e.g. a baseline from `radar-baselines`).
    pub fn with_selection(
        scenario: Scenario,
        workload: Box<dyn Workload + Send>,
        selection: Box<dyn SelectionPolicy + Send>,
    ) -> Self {
        let routes = scenario.topology.routes();
        let n = scenario.topology.len();
        let mut paths = Vec::with_capacity(n);
        for from in scenario.topology.nodes() {
            let mut row = Vec::with_capacity(n);
            for to in scenario.topology.nodes() {
                row.push(routes.path(from, to));
            }
            paths.push(row);
        }
        // "The redirector is co-located with a node whose average
        // distance in hops to other nodes is minimum" (§6.1); with more
        // than one redirector the URL namespace is hash-partitioned over
        // the most central nodes (§2).
        let redirector_nodes: Vec<NodeId> = routes
            .nodes_by_centrality()
            .into_iter()
            .take(scenario.num_redirectors as usize)
            .collect();
        let link_index: std::collections::HashMap<(u16, u16), usize> = scenario
            .topology
            .links()
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| ((a.index() as u16, b.index() as u16), i))
            .collect();
        let node_regions: Vec<radar_simnet::Region> = scenario
            .topology
            .nodes()
            .map(|n| scenario.topology.region(n))
            .collect();
        let hosts = scenario
            .topology
            .nodes()
            .map(|node| {
                let mut host = HostState::new(node, scenario.params_of(node.index()));
                if let Some(limit) = scenario.storage_limit {
                    host.set_storage_limit(limit as usize);
                }
                host
            })
            .collect();
        let servers = (0..n)
            .map(|i| FifoServer::with_capacity(scenario.capacity_of(i)))
            .collect();
        let redirector =
            Redirector::new(scenario.num_objects, scenario.params.distribution_constant);
        let catalog = scenario.catalog.clone().unwrap_or_else(|| {
            Catalog::uniform(scenario.num_objects, scenario.object_size, n as u16)
        });
        let mut metrics = Metrics::new(scenario.metric_bin, scenario.params.measurement_interval);
        metrics.link_bytes = vec![0.0; scenario.topology.links().len()];
        let rng = SimRng::seed_from(scenario.seed);
        let arrivals = (0..n)
            .map(|i| {
                let rate = scenario
                    .node_request_rates
                    .as_ref()
                    .map_or(scenario.node_request_rate, |rates| rates[i]);
                if scenario.poisson_arrivals {
                    ArrivalProcess::Poisson { rate }
                } else {
                    ArrivalProcess::Deterministic { rate }
                }
            })
            .collect();
        Self {
            scenario,
            routes,
            paths,
            redirector_nodes,
            link_index,
            node_regions,
            workload,
            selection,
            hosts,
            servers,
            redirector,
            catalog,
            metrics,
            rng,
            queue: EventQueue::new(),
            arrivals,
            started: false,
            observers: Vec::new(),
            load_reports: vec![(0.0, 0.0); n],
            replay: None,
            recorded: None,
        }
    }

    /// Creates a simulation that replays a captured [`Trace`] instead of
    /// generating arrivals from a workload — the paper's companion
    /// trace-driven mode. The scenario's request-rate settings are
    /// ignored; object ids in the trace must be within
    /// `scenario.num_objects` and gateways within the topology.
    ///
    /// # Panics
    ///
    /// Panics if the trace references an out-of-range gateway or object.
    pub fn replay(scenario: Scenario, trace: Trace) -> Self {
        for (i, e) in trace.entries().iter().enumerate() {
            assert!(
                (e.gateway as usize) < scenario.topology.len(),
                "trace entry {i}: gateway {} out of range",
                e.gateway
            );
            assert!(
                e.object < scenario.num_objects,
                "trace entry {i}: object {} out of range",
                e.object
            );
        }
        let mut sim = Self::with_selection(
            scenario,
            Box::new(NullWorkload),
            Box::new(RadarSelection::new()),
        );
        sim.replay = Some(trace);
        sim
    }

    /// Enables arrival capture: the finished report's
    /// [`RunReport::trace`] will hold every request arrival, replayable
    /// via [`Simulation::replay`].
    pub fn record_trace(&mut self) {
        self.recorded = Some(Vec::new());
    }

    /// Attaches an [`Observer`] receiving a live feed of simulation
    /// events. Multiple observers are invoked in attachment order.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// The nodes hosting the redirectors (the most central nodes; one
    /// per hash partition).
    pub fn redirector_nodes(&self) -> &[NodeId] {
        &self.redirector_nodes
    }

    /// The redirector responsible for `object` (URL-hash partitioning,
    /// §2 — here the hash is the object id).
    fn redirector_node_of(&self, object: ObjectId) -> NodeId {
        self.redirector_nodes[object.index() % self.redirector_nodes.len()]
    }

    /// Runs the simulation to the configured duration and returns the
    /// finalized report.
    pub fn run(mut self) -> RunReport {
        self.run_until(self.scenario.duration);
        self.finish()
    }

    /// Advances the simulation to simulated time `t` seconds (clamped to
    /// the scenario duration), then pauses so intermediate state can be
    /// inspected via [`host`](Self::host), [`redirector`](Self::redirector)
    /// and [`now`](Self::now). Running in stages is exactly equivalent to
    /// one [`run`](Self::run) call.
    pub fn run_until(&mut self, t: f64) {
        if !self.started {
            self.bootstrap();
            self.started = true;
        }
        let end = SimTime::from_secs(t.min(self.scenario.duration).max(0.0));
        while let Some(next) = self.queue.peek_time() {
            if next > end {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.handle(t, ev);
        }
    }

    /// Current simulated time in seconds (the timestamp of the last
    /// processed event; 0 before the simulation starts).
    pub fn now(&self) -> f64 {
        self.queue.now().as_secs()
    }

    /// The protocol state of one host, for mid-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn host(&self, node: NodeId) -> &HostState {
        &self.hosts[node.index()]
    }

    /// The redirector's replica bookkeeping, for mid-run inspection.
    pub fn redirector(&self) -> &Redirector {
        &self.redirector
    }

    /// Finalizes a (possibly partially run) simulation into its report.
    pub fn finish(self) -> RunReport {
        self.finalize()
    }

    fn bootstrap(&mut self) {
        // Initial object placement.
        match self.scenario.initial_placement.clone() {
            InitialPlacement::RoundRobin => {
                let n = self.hosts.len() as u32;
                for i in 0..self.scenario.num_objects {
                    let node = NodeId::new((i % n) as u16);
                    self.install(ObjectId::new(i), node);
                }
            }
            InitialPlacement::Everywhere => {
                for i in 0..self.scenario.num_objects {
                    for node in 0..self.hosts.len() as u16 {
                        self.install(ObjectId::new(i), NodeId::new(node));
                    }
                }
            }
            InitialPlacement::Explicit(assignments) => {
                for (i, nodes) in assignments.iter().enumerate() {
                    for &node in nodes {
                        self.install(ObjectId::new(i as u32), NodeId::new(node));
                    }
                }
            }
        }
        let num_nodes = self.hosts.len();
        if let Some(trace) = &self.replay {
            if let Some(first) = trace.entries().first() {
                self.queue.schedule(
                    SimTime::from_secs(first.t),
                    Event::TraceArrival { index: 0 },
                );
            }
        } else {
            // One arrival stream per gateway, phase-staggered so the
            // constant-rate sources are not lock-stepped.
            for i in 0..num_nodes {
                let offset = self.arrivals[i].phase_offset(i, num_nodes);
                self.queue.schedule(
                    SimTime::from_secs(offset),
                    Event::Arrival {
                        gateway: NodeId::new(i as u16),
                    },
                );
            }
        }
        // Timers.
        self.queue.schedule(
            SimTime::from_secs(self.scenario.params.measurement_interval),
            Event::LoadSample,
        );
        if self.scenario.update_rate > 0.0 {
            let gap = self.rng.exponential(self.scenario.update_rate);
            self.queue
                .schedule(SimTime::from_secs(gap), Event::ProviderUpdate);
        }
        if self.scenario.placement == PlacementMode::Dynamic {
            // Hosts run their placement decisions periodically but not in
            // lock-step: host i fires at period·(1 + (i+1)/n)·…, spreading
            // the runs across the period so admission estimates and load
            // measurements refresh between consecutive deciders.
            let period = self.scenario.params.placement_period;
            for i in 0..num_nodes {
                let phase = period + period * (i + 1) as f64 / num_nodes as f64;
                self.queue.schedule(
                    SimTime::from_secs(phase),
                    Event::Placement {
                        host: NodeId::new(i as u16),
                    },
                );
            }
        }
    }

    /// Charges `bytes` to every link on the precomputed path from `from`
    /// to `to`.
    fn charge_links(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        let path = &self.paths[from.index()][to.index()];
        for w in path.windows(2) {
            let (a, b) = (w[0].index() as u16, w[1].index() as u16);
            let key = (a.min(b), a.max(b));
            let idx = self.link_index[&key];
            self.metrics.link_bytes[idx] += bytes as f64;
        }
    }

    fn install(&mut self, object: ObjectId, node: NodeId) {
        self.redirector.install(object, node);
        self.hosts[node.index()].install_object(object);
    }

    fn handle(&mut self, t: SimTime, ev: Event) {
        match ev {
            Event::Arrival { gateway } => self.on_arrival(t, gateway),
            Event::Redirect {
                object,
                gateway,
                t0,
            } => self.on_redirect(t, object, gateway, t0),
            Event::ArriveAtHost {
                object,
                gateway,
                host,
                t0,
            } => self.on_arrive_at_host(t, object, gateway, host, t0),
            Event::ServiceComplete {
                object,
                gateway,
                host,
                t0,
            } => self.on_service_complete(t, object, gateway, host, t0),
            Event::LoadSample => self.on_load_sample(t),
            Event::Placement { host } => self.on_placement(t, host),
            Event::ProviderUpdate => self.on_provider_update(t),
            Event::TraceArrival { index } => self.on_trace_arrival(t, index),
        }
    }

    fn on_arrival(&mut self, t: SimTime, gateway: NodeId) {
        // Next arrival of this stream.
        let gap = self.arrivals[gateway.index()].next_interarrival(&mut self.rng);
        self.queue
            .schedule(t + SimDuration::from_secs(gap), Event::Arrival { gateway });

        let object = self.workload.choose(t.as_secs(), gateway, &mut self.rng);
        if let Some(recorded) = &mut self.recorded {
            recorded.push(TraceEntry {
                t: t.as_secs(),
                gateway: gateway.index() as u16,
                object: object.index() as u32,
            });
        }
        // Gateway → the object's redirector: propagation only (requests
        // are tiny).
        let hops = self
            .routes
            .distance(gateway, self.redirector_node_of(object));
        let delay = self.scenario.network.propagation_time(hops);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::Redirect {
                object,
                gateway,
                t0: t,
            },
        );
    }

    fn on_trace_arrival(&mut self, t: SimTime, index: usize) {
        let trace = self.replay.as_ref().expect("replay trace present");
        let entry = trace.entries()[index];
        if let Some(next) = trace.entries().get(index + 1) {
            let at = SimTime::from_secs(next.t).max(t);
            self.queue
                .schedule(at, Event::TraceArrival { index: index + 1 });
        }
        let gateway = NodeId::new(entry.gateway);
        let object = ObjectId::new(entry.object);
        if let Some(recorded) = &mut self.recorded {
            recorded.push(TraceEntry {
                t: t.as_secs(),
                gateway: entry.gateway,
                object: entry.object,
            });
        }
        let hops = self
            .routes
            .distance(gateway, self.redirector_node_of(object));
        let delay = self.scenario.network.propagation_time(hops);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::Redirect {
                object,
                gateway,
                t0: t,
            },
        );
    }

    fn on_redirect(&mut self, t: SimTime, object: ObjectId, gateway: NodeId, t0: SimTime) {
        let rnode = self.redirector_node_of(object);
        *self
            .metrics
            .redirector_requests
            .entry(rnode.index() as u16)
            .or_insert(0) += 1;
        let Some(host) = self
            .selection
            .choose(object, gateway, &mut self.redirector, &self.routes)
        else {
            debug_assert!(false, "every object keeps at least one replica");
            return;
        };
        let hops = self.routes.distance(self.redirector_node_of(object), host);
        let delay = self.scenario.network.propagation_time(hops);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::ArriveAtHost {
                object,
                gateway,
                host,
                t0,
            },
        );
    }

    fn on_arrive_at_host(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
    ) {
        // Record the preference path (host → gateway) for placement.
        let path = &self.paths[host.index()][gateway.index()];
        self.hosts[host.index()].record_access(object, path);
        // FIFO service.
        let outcome = self.servers[host.index()].offer(t);
        // Latency breakdown: the redirect leg is everything before host
        // arrival; queueing is time until service begins.
        self.metrics.redirect_delay.record((t - t0).as_secs());
        self.metrics
            .queueing_delay
            .record(outcome.queueing_delay(t).as_secs());
        self.queue.schedule(
            outcome.completion,
            Event::ServiceComplete {
                object,
                gateway,
                host,
                t0,
            },
        );
    }

    fn on_service_complete(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
    ) {
        self.hosts[host.index()].record_serviced(t.as_secs(), object);
        let hops = self.routes.distance(host, gateway);
        let travel = self
            .scenario
            .network
            .transfer_time(self.scenario.object_size, hops);
        let delivered = t + SimDuration::from_secs(travel);
        let latency = (delivered - t0).as_secs();
        let bytes_hops = (self.scenario.object_size * hops as u64) as f64;
        self.metrics
            .record_response(t.as_secs(), delivered.as_secs(), latency, bytes_hops);
        self.metrics.response_travel.record(travel);
        self.charge_links(host, gateway, self.scenario.object_size);
        let (from, to) = (
            self.node_regions[host.index()].index(),
            self.node_regions[gateway.index()].index(),
        );
        self.metrics.region_matrix[from][to] += bytes_hops;
        if !self.observers.is_empty() {
            let record = RequestRecord {
                entered: t0.as_secs(),
                delivered: delivered.as_secs(),
                gateway: gateway.index() as u16,
                object: object.index() as u32,
                host: host.index() as u16,
                latency,
                hops,
            };
            for obs in &mut self.observers {
                obs.on_request_served(&record);
            }
        }
    }

    fn on_load_sample(&mut self, t: SimTime) {
        let now = t.as_secs();
        let mut max = 0.0f64;
        let mut max_host = 0u16;
        for (i, host) in self.hosts.iter_mut().enumerate() {
            host.advance(now);
            // Publish this measurement round's load report.
            self.load_reports[i] = (now, host.load_upper());
            if host.measured_load() > max {
                max = host.measured_load();
                max_host = i as u16;
            }
        }
        self.metrics.max_load.record(now, max);
        self.metrics.max_load_host.push((now, max_host, max));
        for obs in &mut self.observers {
            obs.on_load_sample(now, max);
        }
        // Replica census for Table 2 (sampled here rather than at
        // placement epochs so static runs are covered too).
        let total: u64 = (0..self.scenario.num_objects)
            .map(|i| self.redirector.replica_count(ObjectId::new(i)) as u64)
            .sum();
        let avg = total as f64 / self.scenario.num_objects as f64;
        self.metrics.replica_series.push((now, avg));
        let tracked = &self.hosts[self.scenario.tracked_host as usize];
        self.metrics.load_estimates.push(LoadEstimateSample {
            t: now,
            actual: tracked.measured_load(),
            upper: tracked.load_upper(),
            lower: tracked.load_lower(),
        });
        let next = t + SimDuration::from_secs(self.scenario.params.measurement_interval);
        if next.as_secs() <= self.scenario.duration {
            self.queue.schedule(next, Event::LoadSample);
        }
    }

    fn on_placement(&mut self, t: SimTime, node: NodeId) {
        let now = t.as_secs();
        let i = node.index();
        // Take the deciding host out of the vector so the environment
        // can borrow the rest mutably.
        let mut host = std::mem::replace(
            &mut self.hosts[i],
            HostState::new(node, self.scenario.params_of(i)),
        );
        let outcome = {
            let mut env = SimEnv {
                self_index: i,
                hosts: &mut self.hosts,
                redirector: &mut self.redirector,
                metrics: &mut self.metrics,
                routes: &self.routes,
                paths: &self.paths,
                link_index: &self.link_index,
                catalog: &self.catalog,
                load_reports: &self.load_reports,
                object_size: self.scenario.object_size,
                now,
            };
            run_placement(&mut host, now, &mut env)
        };
        let log_before = self.metrics.relocation_log.len();
        self.metrics.record_placement(now, i as u16, &outcome);
        if !self.observers.is_empty() {
            for k in log_before..self.metrics.relocation_log.len() {
                let event = self.metrics.relocation_log[k];
                for obs in &mut self.observers {
                    obs.on_relocation(&event);
                }
            }
        }
        self.hosts[i] = host;
        self.debug_check_invariants();
        let next = t + SimDuration::from_secs(self.scenario.params.placement_period);
        if next.as_secs() <= self.scenario.duration {
            self.queue.schedule(next, Event::Placement { host: node });
        }
    }

    /// A provider update (§5): pick a random object, propagate the new
    /// version asynchronously from the primary copy to every other
    /// replica, consuming update-propagation bandwidth. If the primary's
    /// host no longer holds the object (it migrated or was dropped), the
    /// primary moves to the object's lowest-id replica — "the location of
    /// the primary copy is tracked by the object's redirector".
    fn on_provider_update(&mut self, t: SimTime) {
        let now = t.as_secs();
        let gap = self.rng.exponential(self.scenario.update_rate);
        self.queue
            .schedule(t + SimDuration::from_secs(gap), Event::ProviderUpdate);

        let object = ObjectId::new(self.rng.index(self.scenario.num_objects as usize) as u32);
        let replicas = self.redirector.replicas(object);
        debug_assert!(!replicas.is_empty(), "every object keeps a replica");
        let mut primary = self.catalog.primary(object);
        let mut reassigned = false;
        if !replicas.iter().any(|r| r.host == primary) {
            primary = replicas[0].host;
            self.catalog.set_primary(object, primary);
            reassigned = true;
        }
        let bytes = self.catalog.object_size();
        let targets: Vec<NodeId> = replicas
            .iter()
            .filter(|r| r.host != primary)
            .map(|r| r.host)
            .collect();
        let bytes_hops: u64 = targets
            .iter()
            .map(|&t| bytes * self.routes.distance(primary, t) as u64)
            .sum();
        for target in targets {
            self.charge_links(primary, target, bytes);
        }
        self.metrics
            .record_update(now, bytes_hops as f64, reassigned);
    }

    /// Debug-build check of the protocol's replica-set subset invariant:
    /// every replica the redirector knows physically exists on its host.
    fn debug_check_invariants(&self) {
        if cfg!(debug_assertions) {
            for i in 0..self.scenario.num_objects {
                let object = ObjectId::new(i);
                for info in self.redirector.replicas(object) {
                    debug_assert!(
                        self.hosts[info.host.index()].has_object(object),
                        "replica-set invariant violated: redirector lists {object}@{} \
                         but the host does not hold it",
                        info.host
                    );
                }
                debug_assert!(
                    self.redirector.replica_count(object) >= 1,
                    "object {object} lost its last replica"
                );
            }
        }
    }

    fn finalize(self) -> RunReport {
        let final_replicas = (0..self.scenario.num_objects)
            .map(|i| {
                self.redirector
                    .replicas(ObjectId::new(i))
                    .iter()
                    .map(|r| (r.host.index() as u16, r.aff))
                    .collect()
            })
            .collect();
        let link_traffic: Vec<((u16, u16), f64)> = self
            .scenario
            .topology
            .links()
            .iter()
            .zip(&self.metrics.link_bytes)
            .map(|(&(a, b), &bytes)| ((a.index() as u16, b.index() as u16), bytes))
            .collect();
        let mut report = RunReport::from_metrics(
            self.metrics,
            self.workload.name().to_string(),
            self.selection.name().to_string(),
            self.scenario.placement == PlacementMode::Dynamic,
            self.scenario.duration,
        );
        report.final_replicas = final_replicas;
        report.link_traffic = link_traffic;
        report.trace = self
            .recorded
            .map(|entries| entries.into_iter().collect::<Trace>());
        report
    }
}

/// Placeholder workload for replay mode (never consulted: arrivals come
/// from the trace).
#[derive(Debug)]
struct NullWorkload;

impl Workload for NullWorkload {
    fn choose(&mut self, _now: f64, _gateway: NodeId, _rng: &mut SimRng) -> ObjectId {
        unreachable!("replay mode never samples a workload")
    }

    fn name(&self) -> &str {
        "replay"
    }
}

/// The placement environment the simulator exposes to a deciding host:
/// all *other* hosts (slot `self_index` holds a placeholder), the
/// redirector, and overhead accounting.
struct SimEnv<'a> {
    self_index: usize,
    hosts: &'a mut [HostState],
    redirector: &'a mut Redirector,
    metrics: &'a mut Metrics,
    routes: &'a RoutingTable,
    paths: &'a [Vec<Vec<NodeId>>],
    link_index: &'a std::collections::HashMap<(u16, u16), usize>,
    catalog: &'a Catalog,
    load_reports: &'a [(f64, f64)],
    object_size: u64,
    now: f64,
}

impl PlacementEnv for SimEnv<'_> {
    fn create_obj(&mut self, target: NodeId, req: CreateObjRequest) -> CreateObjResponse {
        assert_ne!(
            target.index(),
            self.self_index,
            "a host never offers an object to itself"
        );
        let host = &mut self.hosts[target.index()];
        let resp = handle_create_obj(host, self.now, &req);
        if let CreateObjResponse::Accepted { new_copy } = resp {
            // Notify the redirector *after* the copy exists.
            self.redirector.notify_created(req.object, target);
            if new_copy {
                // The object data crosses the backbone: overhead traffic.
                let hops = self.routes.distance(req.source, target);
                self.metrics
                    .record_overhead(self.now, (self.object_size * hops as u64) as f64);
                let path = &self.paths[req.source.index()][target.index()];
                for w in path.windows(2) {
                    let (a, b) = (w[0].index() as u16, w[1].index() as u16);
                    let idx = self.link_index[&(a.min(b), a.max(b))];
                    self.metrics.link_bytes[idx] += self.object_size as f64;
                }
            }
        }
        resp
    }

    fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        self.redirector.request_drop(object, host)
    }

    fn notify_affinity(&mut self, object: ObjectId, host: NodeId, aff: u32) {
        self.redirector.notify_affinity(object, host, aff);
    }

    fn find_offload_recipient(&mut self, requester: NodeId) -> Option<(NodeId, f64)> {
        // "Hosts periodically exchange load reports, so that each host
        // knows a few probable candidates": *discovery* reads the
        // gossiped board (up to one measurement interval stale), but the
        // paper's recipient "responds to the requesting host with its
        // load value" — acceptance is a fresh check at the candidate.
        // Without the fresh check, every overloaded host in an epoch
        // herds onto the same stale best candidate and offloading
        // starves. Candidates are ranked by board headroom against their
        // *own* low watermarks (hosts may be heterogeneous); the first
        // few are probed.
        const PROBES: usize = 5;
        let mut candidates: Vec<(f64, usize)> = self
            .hosts
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != self.self_index && j != requester.index())
            .filter_map(|(j, host)| {
                let (_, reported) = self.load_reports[j];
                let headroom = host.params().low_watermark - reported;
                (headroom > 0.0).then_some((headroom, j))
            })
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite headroom"));
        for &(_, j) in candidates.iter().take(PROBES) {
            let host = &mut self.hosts[j];
            host.advance(self.now);
            let current = host.load_upper();
            if current < host.params().low_watermark {
                return Some((host.node(), current));
            }
        }
        None
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.routes.distance(a, b)
    }

    fn may_replicate(&self, object: ObjectId) -> bool {
        self.catalog
            .kind(object)
            .may_add_replica(self.redirector.replica_count(object))
    }
}
