//! The discrete-event hosting-platform simulation.

use radar_core::placement::{handle_create_obj, run_placement, PlacementEnv};
use radar_core::{Catalog, CreateObjRequest, CreateObjResponse, HostState, ObjectId, Redirector};
use radar_obs::{
    CandidateSnapshot, DecisionEvent, EventKind as ObsEventKind, LoopProfile, PlacementActionEvent,
};
use radar_simcore::{EventQueue, FifoServer, SimDuration, SimRng, SimTime};
use radar_simnet::{NodeId, RoutingTable};
use radar_workload::{ArrivalProcess, Workload};

use std::collections::BTreeMap;

use crate::config::{InitialPlacement, PlacementMode, Scenario};
use crate::faults::{FaultState, FaultTransition, TransitionKind};
use crate::metrics::{LoadEstimateSample, Metrics};
use crate::observer::{FailureReason, Observer, RequestRecord};
use crate::report::RunReport;
use crate::selection::{RadarSelection, SelectionPolicy};
use crate::trace::{Trace, TraceEntry};

/// Simulation events. Per client request: `Arrival` → `Redirect` →
/// `ArriveAtHost` → `ServiceComplete` (delivery statistics are computed
/// arithmetically at completion; no fourth hop event is needed).
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A client request enters at its gateway.
    Arrival { gateway: NodeId },
    /// The request reaches the redirector. `cause` is the
    /// flight-recorder sequence number of the arrival event (0 when
    /// tracing is off).
    Redirect {
        object: ObjectId,
        gateway: NodeId,
        t0: SimTime,
        cause: u64,
    },
    /// The request reaches the chosen host. `cause` chains to the
    /// redirector's decision event.
    ArriveAtHost {
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
        cause: u64,
    },
    /// The host finishes serving; the response departs. `epoch` is the
    /// host's crash epoch when the request entered service — a mismatch
    /// at completion means the host crashed underneath it.
    ServiceComplete {
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
        epoch: u32,
        cause: u64,
    },
    /// Periodic load measurement sampling (Fig. 8a / 8b).
    LoadSample,
    /// Periodic placement decision run on one host (Fig. 3). Hosts are
    /// phase-staggered across the placement period.
    Placement { host: NodeId },
    /// A content provider updates an object; the new version propagates
    /// from the primary copy to every replica (§5).
    ProviderUpdate,
    /// The next entry of a replayed trace arrives at its gateway.
    TraceArrival { index: usize },
    /// The next scheduled fault transition fires.
    Fault { index: usize },
    /// A crashed host has been down for the declare-dead timeout; if it
    /// is still down (and this is not a stale timer from an earlier
    /// crash — `epoch` guards that), its replicas are purged and
    /// re-replicated elsewhere.
    DeclareDead { host: NodeId, epoch: u32 },
}

impl Event {
    /// Stable handler label for event-loop profiling
    /// ([`Simulation::enable_loop_profile`]).
    fn label(&self) -> &'static str {
        match self {
            Event::Arrival { .. } => "arrival",
            Event::Redirect { .. } => "redirect",
            Event::ArriveAtHost { .. } => "arrive-at-host",
            Event::ServiceComplete { .. } => "service-complete",
            Event::LoadSample => "load-sample",
            Event::Placement { .. } => "placement",
            Event::ProviderUpdate => "provider-update",
            Event::TraceArrival { .. } => "trace-arrival",
            Event::Fault { .. } => "fault",
            Event::DeclareDead { .. } => "declare-dead",
        }
    }
}

/// The platform's observer fan-out plus the flight-recorder sequence
/// counter. Kept as one separable struct so the placement environment
/// can emit events while the rest of the simulation is mutably
/// borrowed.
struct EventSink {
    observers: Vec<Box<dyn Observer>>,
    /// Monotonic flight-recorder sequence. Numbers are 1-based so that
    /// 0 can double as "no causal parent" in scheduled events.
    next_seq: u64,
    /// True when at least one attached observer wants the typed event
    /// feed; with no recorder attached, emission sites pay one branch.
    tracing: bool,
}

impl EventSink {
    fn new() -> Self {
        EventSink {
            observers: Vec::new(),
            next_seq: 0,
            tracing: false,
        }
    }

    /// Emits one flight-recorder event to every subscribed observer and
    /// returns its sequence number — or 0 without side effects when
    /// tracing is off. `cause` is the parent's sequence number (0 for
    /// none). Callers should guard [`radar_obs::EventKind`]
    /// construction behind [`tracing`](Self::tracing) so the disabled
    /// path allocates nothing.
    fn emit(&mut self, t: f64, queue_depth: u32, cause: u64, kind: ObsEventKind) -> u64 {
        if !self.tracing {
            return 0;
        }
        self.next_seq += 1;
        let event = radar_obs::Event {
            seq: self.next_seq,
            parent: (cause != 0).then_some(cause),
            t,
            queue_depth,
            kind,
        };
        for obs in &mut self.observers {
            if obs.wants_events() {
                obs.on_event(&event);
            }
        }
        self.next_seq
    }
}

/// Human-readable description of a fault transition, for
/// [`radar_obs::EventKind::Fault`] events.
fn transition_desc(kind: TransitionKind) -> String {
    match kind {
        TransitionKind::HostCrash(h) => format!("host-crash {h}"),
        TransitionKind::HostRecover(h) => format!("host-recover {h}"),
        TransitionKind::LinkFail(a, b) => format!("link-fail {a}-{b}"),
        TransitionKind::LinkHeal(a, b) => format!("link-heal {a}-{b}"),
        TransitionKind::LinkDegrade(a, b, f) => format!("link-degrade {a}-{b} x{f}"),
        TransitionKind::LinkRestore(a, b, f) => format!("link-restore {a}-{b} x{f}"),
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
///
/// See the crate documentation for the modeled request lifecycle. Every
/// run is a deterministic function of `(Scenario, workload, selection)` —
/// the scenario carries the RNG seed.
pub struct Simulation {
    scenario: Scenario,
    routes: RoutingTable,
    /// `paths[from][to]`: precomputed node sequences, `from` inclusive.
    paths: Vec<Vec<Vec<NodeId>>>,
    /// Homes of the hash-partitioned redirectors, most central first.
    redirector_nodes: Vec<NodeId>,
    /// Link id for each normalized `(min, max)` node pair.
    link_index: std::collections::HashMap<(u16, u16), usize>,
    /// Region of each node, by node index.
    node_regions: Vec<radar_simnet::Region>,
    workload: Box<dyn Workload + Send>,
    selection: Box<dyn SelectionPolicy + Send>,
    hosts: Vec<HostState>,
    servers: Vec<FifoServer>,
    redirector: Redirector,
    catalog: Catalog,
    metrics: Metrics,
    rng: SimRng,
    queue: EventQueue<Event>,
    /// One arrival process per gateway.
    arrivals: Vec<ArrivalProcess>,
    /// Whether bootstrap (initial placement + first events) has run.
    started: bool,
    /// Attached observers plus the flight-recorder state.
    events: EventSink,
    /// Event-loop profiling accumulator; `None` until
    /// [`enable_loop_profile`](Simulation::enable_loop_profile).
    profile: Option<LoopProfile>,
    /// The load-report board (§4.2.2 / the TR's recipient discovery):
    /// "hosts periodically exchange load reports, so that each host
    /// knows a few probable candidates." Each entry is the host's last
    /// *published* upper-estimate load and its publication time; offload
    /// recipient discovery reads these possibly-stale reports, while
    /// `CreateObj` admission remains authoritative at the recipient.
    load_reports: Vec<(f64, f64)>,
    /// Replay source: when set, arrivals come from this trace instead of
    /// the arrival processes + workload.
    replay: Option<Trace>,
    /// Capture sink: when enabled, every arrival is recorded.
    recorded: Option<Vec<TraceEntry>>,
    /// Compiled fault schedule, time-sorted (empty on fault-free runs).
    fault_schedule: Vec<FaultTransition>,
    /// Live fault state replayed from the schedule.
    fault_state: FaultState,
    /// Per-host crash epoch. Completions carry the epoch they entered
    /// service under, so work queued before a crash is seen as lost.
    host_epoch: Vec<u32>,
    /// Hosts the platform has declared dead (replicas purged; the host
    /// rejoins empty if it ever recovers).
    declared_dead: Vec<bool>,
    /// Objects currently below the replica floor → when they fell below.
    below_min_since: BTreeMap<u32, f64>,
    /// Objects with zero live replicas → when they lost the last one.
    unavailable_since: BTreeMap<u32, f64>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("workload", &self.workload.name())
            .field("policy", &self.selection.name())
            .field("nodes", &self.hosts.len())
            .field("objects", &self.scenario.num_objects)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates a simulation with the protocol's own request distribution
    /// algorithm.
    pub fn new(scenario: Scenario, workload: Box<dyn Workload + Send>) -> Self {
        Self::with_selection(scenario, workload, Box::new(RadarSelection::new()))
    }

    /// Creates a simulation with a custom replica-selection policy
    /// (e.g. a baseline from `radar-baselines`).
    pub fn with_selection(
        scenario: Scenario,
        workload: Box<dyn Workload + Send>,
        selection: Box<dyn SelectionPolicy + Send>,
    ) -> Self {
        let routes = scenario.topology.routes();
        let n = scenario.topology.len();
        let mut paths = Vec::with_capacity(n);
        for from in scenario.topology.nodes() {
            let mut row = Vec::with_capacity(n);
            for to in scenario.topology.nodes() {
                row.push(routes.path(from, to));
            }
            paths.push(row);
        }
        // "The redirector is co-located with a node whose average
        // distance in hops to other nodes is minimum" (§6.1); with more
        // than one redirector the URL namespace is hash-partitioned over
        // the most central nodes (§2).
        let redirector_nodes: Vec<NodeId> = routes
            .nodes_by_centrality()
            .into_iter()
            .take(scenario.num_redirectors as usize)
            .collect();
        let link_index: std::collections::HashMap<(u16, u16), usize> = scenario
            .topology
            .links()
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| ((a.index() as u16, b.index() as u16), i))
            .collect();
        let node_regions: Vec<radar_simnet::Region> = scenario
            .topology
            .nodes()
            .map(|n| scenario.topology.region(n))
            .collect();
        let hosts = scenario
            .topology
            .nodes()
            .map(|node| {
                let mut host = HostState::new(node, scenario.params_of(node.index()));
                if let Some(limit) = scenario.storage_limit {
                    host.set_storage_limit(limit as usize);
                }
                host
            })
            .collect();
        let servers = (0..n)
            .map(|i| FifoServer::with_capacity(scenario.capacity_of(i)))
            .collect();
        let redirector =
            Redirector::new(scenario.num_objects, scenario.params.distribution_constant);
        let catalog = scenario.catalog.clone().unwrap_or_else(|| {
            Catalog::uniform(scenario.num_objects, scenario.object_size, n as u16)
        });
        let mut metrics = Metrics::new(scenario.metric_bin, scenario.params.measurement_interval);
        metrics.link_bytes = vec![0.0; scenario.topology.links().len()];
        let rng = SimRng::seed_from(scenario.seed);
        let fault_schedule = scenario.faults.transitions(scenario.duration);
        let arrivals = (0..n)
            .map(|i| {
                let rate = scenario
                    .node_request_rates
                    .as_ref()
                    .map_or(scenario.node_request_rate, |rates| rates[i]);
                if scenario.poisson_arrivals {
                    ArrivalProcess::Poisson { rate }
                } else {
                    ArrivalProcess::Deterministic { rate }
                }
            })
            .collect();
        Self {
            scenario,
            routes,
            paths,
            redirector_nodes,
            link_index,
            node_regions,
            workload,
            selection,
            hosts,
            servers,
            redirector,
            catalog,
            metrics,
            rng,
            queue: EventQueue::new(),
            arrivals,
            started: false,
            events: EventSink::new(),
            profile: None,
            load_reports: vec![(0.0, 0.0); n],
            replay: None,
            recorded: None,
            fault_schedule,
            fault_state: FaultState::new(n),
            host_epoch: vec![0; n],
            declared_dead: vec![false; n],
            below_min_since: BTreeMap::new(),
            unavailable_since: BTreeMap::new(),
        }
    }

    /// Creates a simulation that replays a captured [`Trace`] instead of
    /// generating arrivals from a workload — the paper's companion
    /// trace-driven mode. The scenario's request-rate settings are
    /// ignored; object ids in the trace must be within
    /// `scenario.num_objects` and gateways within the topology.
    ///
    /// # Panics
    ///
    /// Panics if the trace references an out-of-range gateway or object.
    pub fn replay(scenario: Scenario, trace: Trace) -> Self {
        for (i, e) in trace.entries().iter().enumerate() {
            assert!(
                (e.gateway as usize) < scenario.topology.len(),
                "trace entry {i}: gateway {} out of range",
                e.gateway
            );
            assert!(
                e.object < scenario.num_objects,
                "trace entry {i}: object {} out of range",
                e.object
            );
        }
        let mut sim = Self::with_selection(
            scenario,
            Box::new(NullWorkload),
            Box::new(RadarSelection::new()),
        );
        sim.replay = Some(trace);
        sim
    }

    /// Enables arrival capture: the finished report's
    /// [`RunReport::trace`] will hold every request arrival, replayable
    /// via [`Simulation::replay`].
    pub fn record_trace(&mut self) {
        self.recorded = Some(Vec::new());
    }

    /// Attaches an [`Observer`] receiving a live feed of simulation
    /// events. Multiple observers are invoked in attachment order.
    ///
    /// Attaching an observer whose [`Observer::wants_events`] returns
    /// `true` (e.g. a [`radar_obs::Recorder`]) switches on the flight
    /// recorder: the platform then builds and delivers the typed
    /// [`radar_obs::Event`] feed — decision snapshots, placement
    /// explanations, causal parents.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.events.tracing |= observer.wants_events();
        self.events.observers.push(observer);
    }

    /// Enables event-loop profiling: each handled event is timed and
    /// binned by type, together with queue-depth samples. The profile
    /// is delivered to observers via [`Observer::on_loop_profile`] and
    /// returned in [`RunReport::loop_profile`]. Wall-clock numbers stay
    /// out of the event stream and the report JSON, so profiling never
    /// perturbs determinism of recorded outputs.
    pub fn enable_loop_profile(&mut self) {
        self.profile = Some(LoopProfile::new());
    }

    /// The nodes hosting the redirectors (the most central nodes; one
    /// per hash partition).
    pub fn redirector_nodes(&self) -> &[NodeId] {
        &self.redirector_nodes
    }

    /// The redirector responsible for `object` (URL-hash partitioning,
    /// §2 — here the hash is the object id).
    fn redirector_node_of(&self, object: ObjectId) -> NodeId {
        self.redirector_nodes[object.index() % self.redirector_nodes.len()]
    }

    /// Runs the simulation to the configured duration and returns the
    /// finalized report.
    pub fn run(mut self) -> RunReport {
        self.run_until(self.scenario.duration);
        self.finish()
    }

    /// Advances the simulation to simulated time `t` seconds (clamped to
    /// the scenario duration), then pauses so intermediate state can be
    /// inspected via [`host`](Self::host), [`redirector`](Self::redirector)
    /// and [`now`](Self::now). Running in stages is exactly equivalent to
    /// one [`run`](Self::run) call.
    pub fn run_until(&mut self, t: f64) {
        if !self.started {
            self.bootstrap();
            self.started = true;
        }
        let end = SimTime::from_secs(t.min(self.scenario.duration).max(0.0));
        while let Some(next) = self.queue.peek_time() {
            if next > end {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            if self.profile.is_some() {
                let label = ev.label();
                let depth = self.queue.len() as u32;
                let started = std::time::Instant::now();
                self.handle(t, ev);
                let nanos = started.elapsed().as_nanos() as u64;
                if let Some(profile) = &mut self.profile {
                    profile.record(label, nanos, depth);
                }
            } else {
                self.handle(t, ev);
            }
        }
    }

    /// Current simulated time in seconds (the timestamp of the last
    /// processed event; 0 before the simulation starts).
    pub fn now(&self) -> f64 {
        self.queue.now().as_secs()
    }

    /// The protocol state of one host, for mid-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn host(&self, node: NodeId) -> &HostState {
        &self.hosts[node.index()]
    }

    /// The redirector's replica bookkeeping, for mid-run inspection.
    pub fn redirector(&self) -> &Redirector {
        &self.redirector
    }

    /// Finalizes a (possibly partially run) simulation into its report.
    pub fn finish(self) -> RunReport {
        self.finalize()
    }

    fn bootstrap(&mut self) {
        // Initial object placement.
        match self.scenario.initial_placement.clone() {
            InitialPlacement::RoundRobin => {
                let n = self.hosts.len() as u32;
                for i in 0..self.scenario.num_objects {
                    let node = NodeId::new((i % n) as u16);
                    self.install(ObjectId::new(i), node);
                }
            }
            InitialPlacement::Everywhere => {
                for i in 0..self.scenario.num_objects {
                    for node in 0..self.hosts.len() as u16 {
                        self.install(ObjectId::new(i), NodeId::new(node));
                    }
                }
            }
            InitialPlacement::Explicit(assignments) => {
                for (i, nodes) in assignments.iter().enumerate() {
                    for &node in nodes {
                        self.install(ObjectId::new(i as u32), NodeId::new(node));
                    }
                }
            }
        }
        let num_nodes = self.hosts.len();
        if let Some(trace) = &self.replay {
            if let Some(first) = trace.entries().first() {
                self.queue.schedule(
                    SimTime::from_secs(first.t),
                    Event::TraceArrival { index: 0 },
                );
            }
        } else {
            // One arrival stream per gateway, phase-staggered so the
            // constant-rate sources are not lock-stepped.
            for i in 0..num_nodes {
                let offset = self.arrivals[i].phase_offset(i, num_nodes);
                self.queue.schedule(
                    SimTime::from_secs(offset),
                    Event::Arrival {
                        gateway: NodeId::new(i as u16),
                    },
                );
            }
        }
        // Timers.
        self.queue.schedule(
            SimTime::from_secs(self.scenario.params.measurement_interval),
            Event::LoadSample,
        );
        if self.scenario.update_rate > 0.0 {
            let gap = self.rng.exponential(self.scenario.update_rate);
            self.queue
                .schedule(SimTime::from_secs(gap), Event::ProviderUpdate);
        }
        if self.scenario.placement == PlacementMode::Dynamic {
            // Hosts run their placement decisions periodically but not in
            // lock-step: host i fires at period·(1 + (i+1)/n)·…, spreading
            // the runs across the period so admission estimates and load
            // measurements refresh between consecutive deciders.
            let period = self.scenario.params.placement_period;
            for i in 0..num_nodes {
                let phase = period + period * (i + 1) as f64 / num_nodes as f64;
                self.queue.schedule(
                    SimTime::from_secs(phase),
                    Event::Placement {
                        host: NodeId::new(i as u16),
                    },
                );
            }
        }
        if let Some(first) = self.fault_schedule.first() {
            self.queue
                .schedule(SimTime::from_secs(first.t), Event::Fault { index: 0 });
        }
    }

    /// Charges `bytes` to every link on the precomputed path from `from`
    /// to `to`.
    fn charge_links(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        let path = &self.paths[from.index()][to.index()];
        for w in path.windows(2) {
            let (a, b) = (w[0].index() as u16, w[1].index() as u16);
            let key = (a.min(b), a.max(b));
            let idx = self.link_index[&key];
            self.metrics.link_bytes[idx] += bytes as f64;
        }
    }

    fn install(&mut self, object: ObjectId, node: NodeId) {
        self.redirector.install(object, node);
        self.hosts[node.index()].install_object(object);
    }

    fn handle(&mut self, t: SimTime, ev: Event) {
        match ev {
            Event::Arrival { gateway } => self.on_arrival(t, gateway),
            Event::Redirect {
                object,
                gateway,
                t0,
                cause,
            } => self.on_redirect(t, object, gateway, t0, cause),
            Event::ArriveAtHost {
                object,
                gateway,
                host,
                t0,
                cause,
            } => self.on_arrive_at_host(t, object, gateway, host, t0, cause),
            Event::ServiceComplete {
                object,
                gateway,
                host,
                t0,
                epoch,
                cause,
            } => self.on_service_complete(t, object, gateway, host, t0, epoch, cause),
            Event::LoadSample => self.on_load_sample(t),
            Event::Placement { host } => self.on_placement(t, host),
            Event::ProviderUpdate => self.on_provider_update(t),
            Event::TraceArrival { index } => self.on_trace_arrival(t, index),
            Event::Fault { index } => self.on_fault(t, index),
            Event::DeclareDead { host, epoch } => self.on_declare_dead(t, host, epoch),
        }
    }

    /// `true` when nodes `a` and `b` can currently exchange traffic
    /// (always true until a link partition severs them).
    fn connected(&self, a: NodeId, b: NodeId) -> bool {
        !self.paths[a.index()][b.index()].is_empty()
    }

    /// Propagation-only delay over the current route, honoring per-link
    /// degradation factors. Callers must have checked [`connected`].
    fn propagation(&self, from: NodeId, to: NodeId) -> f64 {
        if !self.fault_state.any_link_degraded() {
            return self
                .scenario
                .network
                .propagation_time(self.routes.distance(from, to));
        }
        self.scenario.network.hop_delay * self.weighted_hops(from, to)
    }

    /// Store-and-forward transfer time over the current route. Degraded
    /// links stretch the propagation term only — the bandwidth term of
    /// the §6.1 cost model is a link property, not a congestion signal.
    fn transfer(&self, from: NodeId, to: NodeId, bytes: u64) -> f64 {
        let hops = self.routes.distance(from, to);
        if !self.fault_state.any_link_degraded() {
            return self.scenario.network.transfer_time(bytes, hops);
        }
        self.scenario.network.hop_delay * self.weighted_hops(from, to)
            + hops as f64 * (bytes as f64 / self.scenario.network.link_bandwidth)
    }

    /// Sum of per-link delay factors along the current route (equals the
    /// hop count when nothing is degraded).
    fn weighted_hops(&self, from: NodeId, to: NodeId) -> f64 {
        self.paths[from.index()][to.index()]
            .windows(2)
            .map(|w| {
                self.fault_state
                    .link_factor(w[0].index() as u16, w[1].index() as u16)
            })
            .sum()
    }

    fn fail_request(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        reason: FailureReason,
        cause: u64,
    ) {
        self.metrics.failed_requests += 1;
        let now = t.as_secs();
        if self.events.tracing {
            let qd = self.queue.len() as u32;
            self.events.emit(
                now,
                qd,
                cause,
                ObsEventKind::RequestFailed {
                    gateway: gateway.index() as u16,
                    object: object.index() as u32,
                    reason: reason.as_str().to_string(),
                },
            );
        }
        for obs in &mut self.events.observers {
            obs.on_request_failed(now, object.index() as u32, gateway.index() as u16, reason);
        }
    }

    fn on_arrival(&mut self, t: SimTime, gateway: NodeId) {
        // Next arrival of this stream.
        let gap = self.arrivals[gateway.index()].next_interarrival(&mut self.rng);
        self.queue
            .schedule(t + SimDuration::from_secs(gap), Event::Arrival { gateway });

        let object = self.workload.choose(t.as_secs(), gateway, &mut self.rng);
        if let Some(recorded) = &mut self.recorded {
            recorded.push(TraceEntry {
                t: t.as_secs(),
                gateway: gateway.index() as u16,
                object: object.index() as u32,
            });
        }
        // Gateway → the object's redirector: propagation only (requests
        // are tiny).
        let cause = self.emit_arrival(t, object, gateway);
        let rnode = self.redirector_node_of(object);
        if !self.connected(gateway, rnode) {
            self.fail_request(t, object, gateway, FailureReason::Unreachable, cause);
            return;
        }
        let delay = self.propagation(gateway, rnode);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::Redirect {
                object,
                gateway,
                t0: t,
                cause,
            },
        );
    }

    /// Emits the root of a request's causal chain (a `RequestArrived`
    /// event) and returns its sequence number (0 when tracing is off).
    fn emit_arrival(&mut self, t: SimTime, object: ObjectId, gateway: NodeId) -> u64 {
        if !self.events.tracing {
            return 0;
        }
        let qd = self.queue.len() as u32;
        self.events.emit(
            t.as_secs(),
            qd,
            0,
            ObsEventKind::RequestArrived {
                gateway: gateway.index() as u16,
                object: object.index() as u32,
            },
        )
    }

    fn on_trace_arrival(&mut self, t: SimTime, index: usize) {
        let trace = self.replay.as_ref().expect("replay trace present");
        let entry = trace.entries()[index];
        if let Some(next) = trace.entries().get(index + 1) {
            let at = SimTime::from_secs(next.t).max(t);
            self.queue
                .schedule(at, Event::TraceArrival { index: index + 1 });
        }
        let gateway = NodeId::new(entry.gateway);
        let object = ObjectId::new(entry.object);
        if let Some(recorded) = &mut self.recorded {
            recorded.push(TraceEntry {
                t: t.as_secs(),
                gateway: entry.gateway,
                object: entry.object,
            });
        }
        let cause = self.emit_arrival(t, object, gateway);
        let rnode = self.redirector_node_of(object);
        if !self.connected(gateway, rnode) {
            self.fail_request(t, object, gateway, FailureReason::Unreachable, cause);
            return;
        }
        let delay = self.propagation(gateway, rnode);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::Redirect {
                object,
                gateway,
                t0: t,
                cause,
            },
        );
    }

    fn on_redirect(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        t0: SimTime,
        cause: u64,
    ) {
        let rnode = self.redirector_node_of(object);
        *self
            .metrics
            .redirector_requests
            .entry(rnode.index() as u16)
            .or_insert(0) += 1;
        // A replica is usable when its host is up and traffic can flow
        // redirector → host and host → gateway.
        let fault_state = &self.fault_state;
        let paths = &self.paths;
        let usable = |h: NodeId| {
            fault_state.host_up(h.index() as u16)
                && !paths[rnode.index()][h.index()].is_empty()
                && !paths[h.index()][gateway.index()].is_empty()
        };
        let (chosen, explanation) = if self.events.tracing {
            self.selection.choose_available_explained(
                object,
                gateway,
                &mut self.redirector,
                &self.routes,
                &usable,
            )
        } else {
            let pick = self.selection.choose_available(
                object,
                gateway,
                &mut self.redirector,
                &self.routes,
                &usable,
            );
            (pick, None)
        };
        let mut fallback_used = false;
        let host = match chosen {
            Some(h) => h,
            None => {
                // Graceful degradation: no usable replica, so fetch from
                // the provider's origin — modeled as re-installing the
                // object at its primary node (reassigned to the most
                // central live host when the primary itself is down).
                debug_assert!(
                    !self.scenario.faults.is_empty(),
                    "every object keeps at least one replica"
                );
                let now = t.as_secs();
                let fallback = self.live_primary(object).filter(|&p| {
                    !self.paths[rnode.index()][p.index()].is_empty()
                        && !self.paths[p.index()][gateway.index()].is_empty()
                });
                let Some(p) = fallback else {
                    let any_live = self
                        .redirector
                        .replicas(object)
                        .iter()
                        .any(|r| self.fault_state.host_up(r.host.index() as u16));
                    let reason = if any_live {
                        FailureReason::Unreachable
                    } else {
                        FailureReason::AllReplicasDown
                    };
                    self.fail_request(t, object, gateway, reason, cause);
                    return;
                };
                if !self.redirector.replicas(object).iter().any(|r| r.host == p) {
                    self.install(object, p);
                    self.refresh_one(now, object);
                }
                self.metrics.primary_fallbacks += 1;
                fallback_used = true;
                p
            }
        };
        let decision = if self.events.tracing {
            let qd = self.queue.len() as u32;
            let event = match explanation {
                Some(e) => DecisionEvent {
                    object: object.index() as u32,
                    gateway: gateway.index() as u16,
                    chosen: host.index() as u16,
                    branch: e.branch.as_str().to_string(),
                    constant: e.constant,
                    closest: Some(e.closest.index() as u16),
                    least: Some(e.least.index() as u16),
                    unit_closest: Some(e.unit_closest),
                    unit_least: Some(e.unit_least),
                    candidates: e
                        .candidates
                        .iter()
                        .map(|c| CandidateSnapshot {
                            host: c.host.index() as u16,
                            rcnt: c.rcnt,
                            aff: c.aff,
                            unit: c.unit_rcnt(),
                            distance: c.distance,
                        })
                        .collect(),
                },
                // Either the selection policy has no Fig. 2 data (a
                // baseline) or no usable replica existed and the
                // primary fallback served.
                None => DecisionEvent {
                    object: object.index() as u32,
                    gateway: gateway.index() as u16,
                    chosen: host.index() as u16,
                    branch: if fallback_used {
                        "primary-fallback"
                    } else {
                        "policy"
                    }
                    .to_string(),
                    constant: self.scenario.params.distribution_constant,
                    closest: None,
                    least: None,
                    unit_closest: None,
                    unit_least: None,
                    candidates: Vec::new(),
                },
            };
            self.events
                .emit(t.as_secs(), qd, cause, ObsEventKind::Decision(event))
        } else {
            0
        };
        let delay = self.propagation(rnode, host);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::ArriveAtHost {
                object,
                gateway,
                host,
                t0,
                cause: decision,
            },
        );
    }

    fn on_arrive_at_host(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
        cause: u64,
    ) {
        let i = host.index();
        if !self.fault_state.host_up(i as u16) {
            // The host crashed while the redirect was in flight.
            self.fail_request(t, object, gateway, FailureReason::CrashedMidService, cause);
            return;
        }
        // Record the preference path (host → gateway) for placement.
        let path = &self.paths[i][gateway.index()];
        self.hosts[i].record_access(object, path);
        // FIFO service.
        let outcome = self.servers[i].offer(t);
        // Latency breakdown: the redirect leg is everything before host
        // arrival; queueing is time until service begins.
        self.metrics.redirect_delay.record((t - t0).as_secs());
        self.metrics
            .queueing_delay
            .record(outcome.queueing_delay(t).as_secs());
        self.queue.schedule(
            outcome.completion,
            Event::ServiceComplete {
                object,
                gateway,
                host,
                t0,
                epoch: self.host_epoch[i],
                cause,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_service_complete(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
        epoch: u32,
        cause: u64,
    ) {
        let i = host.index();
        if epoch != self.host_epoch[i] {
            // The host crashed while this request was queued or in
            // service; the work is lost.
            self.fail_request(t, object, gateway, FailureReason::CrashedMidService, cause);
            return;
        }
        self.hosts[i].record_serviced(t.as_secs(), object);
        if !self.connected(host, gateway) {
            // The response has nowhere to go: a partition opened while
            // the request was in service.
            self.fail_request(t, object, gateway, FailureReason::Unreachable, cause);
            return;
        }
        let hops = self.routes.distance(host, gateway);
        let travel = self.transfer(host, gateway, self.scenario.object_size);
        let delivered = t + SimDuration::from_secs(travel);
        let latency = (delivered - t0).as_secs();
        let bytes_hops = (self.scenario.object_size * hops as u64) as f64;
        self.metrics
            .record_response(t.as_secs(), delivered.as_secs(), latency, bytes_hops);
        self.metrics.response_travel.record(travel);
        self.charge_links(host, gateway, self.scenario.object_size);
        let (from, to) = (
            self.node_regions[host.index()].index(),
            self.node_regions[gateway.index()].index(),
        );
        self.metrics.region_matrix[from][to] += bytes_hops;
        if self.events.tracing {
            let qd = self.queue.len() as u32;
            self.events.emit(
                t.as_secs(),
                qd,
                cause,
                ObsEventKind::RequestServed {
                    gateway: gateway.index() as u16,
                    object: object.index() as u32,
                    host: host.index() as u16,
                    latency,
                    hops,
                },
            );
        }
        if !self.events.observers.is_empty() {
            let record = RequestRecord {
                entered: t0.as_secs(),
                delivered: delivered.as_secs(),
                gateway: gateway.index() as u16,
                object: object.index() as u32,
                host: host.index() as u16,
                latency,
                hops,
            };
            for obs in &mut self.events.observers {
                obs.on_request_served(&record);
            }
        }
    }

    fn on_load_sample(&mut self, t: SimTime) {
        let now = t.as_secs();
        let mut max = 0.0f64;
        let mut max_host = 0u16;
        for (i, host) in self.hosts.iter_mut().enumerate() {
            if !self.fault_state.host_up(i as u16) {
                // A crashed host publishes nothing; an infinite report
                // keeps it off everyone's offload candidate list.
                self.load_reports[i] = (now, f64::INFINITY);
                continue;
            }
            host.advance(now);
            // Publish this measurement round's load report.
            self.load_reports[i] = (now, host.load_upper());
            if host.measured_load() > max {
                max = host.measured_load();
                max_host = i as u16;
            }
        }
        self.metrics.max_load.record(now, max);
        self.metrics.max_load_host.push((now, max_host, max));
        for obs in &mut self.events.observers {
            obs.on_load_sample(now, max);
        }
        // Replica census for Table 2 (sampled here rather than at
        // placement epochs so static runs are covered too).
        let total: u64 = (0..self.scenario.num_objects)
            .map(|i| self.redirector.replica_count(ObjectId::new(i)) as u64)
            .sum();
        let avg = total as f64 / self.scenario.num_objects as f64;
        self.metrics.replica_series.push((now, avg));
        let tracked = &self.hosts[self.scenario.tracked_host as usize];
        self.metrics.load_estimates.push(LoadEstimateSample {
            t: now,
            actual: tracked.measured_load(),
            upper: tracked.load_upper(),
            lower: tracked.load_lower(),
        });
        let next = t + SimDuration::from_secs(self.scenario.params.measurement_interval);
        if next.as_secs() <= self.scenario.duration {
            self.queue.schedule(next, Event::LoadSample);
        }
    }

    fn on_placement(&mut self, t: SimTime, node: NodeId) {
        let now = t.as_secs();
        let i = node.index();
        if !self.fault_state.host_up(i as u16) {
            // A crashed host makes no placement decisions, but its timer
            // keeps ticking so decisions resume after recovery.
            let next = t + SimDuration::from_secs(self.scenario.params.placement_period);
            if next.as_secs() <= self.scenario.duration {
                self.queue.schedule(next, Event::Placement { host: node });
            }
            return;
        }
        let alive: Vec<bool> = (0..self.hosts.len())
            .map(|j| self.fault_state.host_up(j as u16))
            .collect();
        // Take the deciding host out of the vector so the environment
        // can borrow the rest mutably.
        let mut host = std::mem::replace(
            &mut self.hosts[i],
            HostState::new(node, self.scenario.params_of(i)),
        );
        let outcome = {
            let mut env = SimEnv {
                self_index: i,
                hosts: &mut self.hosts,
                redirector: &mut self.redirector,
                metrics: &mut self.metrics,
                routes: &self.routes,
                paths: &self.paths,
                link_index: &self.link_index,
                catalog: &self.catalog,
                load_reports: &self.load_reports,
                alive: &alive,
                object_size: self.scenario.object_size,
                now,
                events: &mut self.events,
                queue_depth: self.queue.len() as u32,
            };
            run_placement(&mut host, now, &mut env)
        };
        if self.events.tracing {
            // One flight-recorder event per placement decision, carrying
            // the threshold comparison that triggered it.
            let qd = self.queue.len() as u32;
            for d in &outcome.decisions {
                self.events.emit(
                    now,
                    qd,
                    0,
                    ObsEventKind::PlacementAction(PlacementActionEvent {
                        host: i as u16,
                        object: d.object.index() as u32,
                        action: d.action.as_str().to_string(),
                        target: d.target.map(|n| n.index() as u16),
                        unit_rate: d.unit_rate,
                        share: d.share,
                        ratio: d.ratio,
                        deletion_threshold: d.deletion_threshold,
                        replication_threshold: d.replication_threshold,
                    }),
                );
            }
        }
        let log_before = self.metrics.relocation_log.len();
        self.metrics.record_placement(now, i as u16, &outcome);
        if !self.events.observers.is_empty() {
            for k in log_before..self.metrics.relocation_log.len() {
                let event = self.metrics.relocation_log[k];
                for obs in &mut self.events.observers {
                    obs.on_relocation(&event);
                }
            }
        }
        self.hosts[i] = host;
        self.debug_check_invariants();
        let next = t + SimDuration::from_secs(self.scenario.params.placement_period);
        if next.as_secs() <= self.scenario.duration {
            self.queue.schedule(next, Event::Placement { host: node });
        }
    }

    /// A provider update (§5): pick a random object, propagate the new
    /// version asynchronously from the primary copy to every other
    /// replica, consuming update-propagation bandwidth. If the primary's
    /// host no longer holds the object (it migrated or was dropped), the
    /// primary moves to the object's lowest-id replica — "the location of
    /// the primary copy is tracked by the object's redirector".
    fn on_provider_update(&mut self, t: SimTime) {
        let now = t.as_secs();
        let gap = self.rng.exponential(self.scenario.update_rate);
        self.queue
            .schedule(t + SimDuration::from_secs(gap), Event::ProviderUpdate);

        let object = ObjectId::new(self.rng.index(self.scenario.num_objects as usize) as u32);
        let replicas = self.redirector.replicas(object);
        debug_assert!(
            !replicas.is_empty() || !self.scenario.faults.is_empty(),
            "every object keeps a replica"
        );
        if replicas.is_empty() {
            // Every copy is on a purged host; the re-replication sweep
            // will restore the object — nothing to propagate to.
            return;
        }
        let mut primary = self.catalog.primary(object);
        let mut reassigned = false;
        if !replicas.iter().any(|r| r.host == primary) {
            // Prefer a live replica as the new primary (they are all
            // live on fault-free runs, where this picks replicas[0]).
            primary = replicas
                .iter()
                .map(|r| r.host)
                .find(|h| self.fault_state.host_up(h.index() as u16))
                .unwrap_or(replicas[0].host);
            self.catalog.set_primary(object, primary);
            reassigned = true;
        }
        let bytes = self.catalog.object_size();
        let targets: Vec<NodeId> = replicas
            .iter()
            .filter(|r| r.host != primary)
            .map(|r| r.host)
            .collect();
        let bytes_hops: u64 = targets
            .iter()
            .map(|&t| bytes * self.routes.distance(primary, t) as u64)
            .sum();
        for target in targets {
            self.charge_links(primary, target, bytes);
        }
        self.metrics
            .record_update(now, bytes_hops as f64, reassigned);
    }

    /// Applies the `index`-th scheduled fault transition and schedules
    /// the next one.
    fn on_fault(&mut self, t: SimTime, index: usize) {
        if let Some(next) = self.fault_schedule.get(index + 1) {
            self.queue.schedule(
                SimTime::from_secs(next.t),
                Event::Fault { index: index + 1 },
            );
        }
        let transition = self.fault_schedule[index];
        let now = t.as_secs();
        let routes_dirty = self.fault_state.apply(transition.kind);
        self.metrics.faults_injected += 1;
        if self.events.tracing {
            let qd = self.queue.len() as u32;
            self.events.emit(
                now,
                qd,
                0,
                ObsEventKind::Fault {
                    desc: transition_desc(transition.kind),
                },
            );
        }
        for obs in &mut self.events.observers {
            obs.on_fault(&transition);
        }
        match transition.kind {
            TransitionKind::HostCrash(h) => {
                let i = h as usize;
                // Everything queued or in service on the host is lost:
                // bump the epoch (stale completions fail) and replace
                // the server with an empty one.
                self.host_epoch[i] += 1;
                self.servers[i] = FifoServer::with_capacity(self.scenario.capacity_of(i));
                self.queue.schedule(
                    t + SimDuration::from_secs(self.scenario.faults.declare_dead_after()),
                    Event::DeclareDead {
                        host: NodeId::new(h),
                        epoch: self.host_epoch[i],
                    },
                );
                self.refresh_object_health(now);
            }
            TransitionKind::HostRecover(h) => {
                if self.fault_state.host_up(h) {
                    let i = h as usize;
                    if self.declared_dead[i] {
                        // Its replicas were purged while it was away; it
                        // rejoins as an empty host.
                        self.declared_dead[i] = false;
                        let mut fresh = HostState::new(NodeId::new(h), self.scenario.params_of(i));
                        if let Some(limit) = self.scenario.storage_limit {
                            fresh.set_storage_limit(limit as usize);
                        }
                        self.hosts[i] = fresh;
                    }
                    self.refresh_object_health(now);
                    self.re_replicate(t);
                }
            }
            TransitionKind::LinkFail(..) | TransitionKind::LinkHeal(..) => {
                if routes_dirty {
                    self.recompute_routes();
                }
            }
            TransitionKind::LinkDegrade(..) | TransitionKind::LinkRestore(..) => {}
        }
    }

    /// The declare-dead timer fired: if the host is still down from the
    /// same crash, purge its replicas and re-replicate what fell below
    /// the floor.
    fn on_declare_dead(&mut self, t: SimTime, host: NodeId, epoch: u32) {
        let i = host.index();
        if self.host_epoch[i] != epoch
            || self.fault_state.host_up(i as u16)
            || self.declared_dead[i]
        {
            return;
        }
        self.declared_dead[i] = true;
        let purged = self.redirector.purge_host(host);
        if self.events.tracing {
            // Purging resets the surviving replicas' request counts —
            // one CountsReset per affected object.
            let qd = self.queue.len() as u32;
            for object in purged {
                self.events.emit(
                    t.as_secs(),
                    qd,
                    0,
                    ObsEventKind::CountsReset {
                        object: object.index() as u32,
                        cause: "purge".to_string(),
                    },
                );
            }
        }
        self.refresh_object_health(t.as_secs());
        self.re_replicate(t);
    }

    /// Rebuilds routing and the path cache over the currently-up links.
    fn recompute_routes(&mut self) {
        let fault_state = &self.fault_state;
        let routes = RoutingTable::for_topology_masked(&self.scenario.topology, &|a, b| {
            fault_state.link_up(a.index() as u16, b.index() as u16)
        });
        self.routes = routes;
        let n = self.paths.len();
        for from in 0..n {
            for to in 0..n {
                self.paths[from][to] = self
                    .routes
                    .try_path(NodeId::new(from as u16), NodeId::new(to as u16))
                    .unwrap_or_default();
            }
        }
    }

    /// The object's primary node, standing in for the provider's origin
    /// server. When the recorded primary is itself down, the designation
    /// moves to the most central live host. `None` when every host is
    /// down.
    fn live_primary(&mut self, object: ObjectId) -> Option<NodeId> {
        let p = self.catalog.primary(object);
        if self.fault_state.host_up(p.index() as u16) {
            return Some(p);
        }
        let c = self
            .routes
            .nodes_by_centrality()
            .into_iter()
            .find(|n| self.fault_state.host_up(n.index() as u16))?;
        self.catalog.set_primary(object, c);
        Some(c)
    }

    /// Re-checks one object's live-replica count against the
    /// availability and replica-floor trackers, opening or closing the
    /// corresponding intervals.
    fn refresh_one(&mut self, now: f64, object: ObjectId) {
        let i = object.index() as u32;
        let live = self
            .redirector
            .replicas(object)
            .iter()
            .filter(|r| self.fault_state.host_up(r.host.index() as u16))
            .count() as u32;
        if live == 0 {
            self.unavailable_since.entry(i).or_insert(now);
        } else if let Some(since) = self.unavailable_since.remove(&i) {
            self.metrics.unavailable_object_seconds += now - since;
        }
        if live < self.scenario.faults.min_replicas() {
            self.below_min_since.entry(i).or_insert(now);
        } else if let Some(since) = self.below_min_since.remove(&i) {
            self.metrics.restore_time.record(now - since);
        }
    }

    /// Full sweep of [`refresh_one`] after a liveness change.
    fn refresh_object_health(&mut self, now: f64) {
        if self.scenario.faults.is_empty() {
            return;
        }
        for i in 0..self.scenario.num_objects {
            self.refresh_one(now, ObjectId::new(i));
        }
    }

    /// Restores every object to the replica floor: copies from a live
    /// replica onto the live host with the most load-report headroom, or
    /// — when no live copy exists anywhere — re-installs the object at
    /// its primary (an origin fetch). Runs after a host is declared dead
    /// and after recoveries.
    fn re_replicate(&mut self, t: SimTime) {
        if self.scenario.faults.is_empty() {
            return;
        }
        let now = t.as_secs();
        let floor = self.scenario.faults.min_replicas();
        for i in 0..self.scenario.num_objects {
            let object = ObjectId::new(i);
            loop {
                let live: Vec<NodeId> = self
                    .redirector
                    .replicas(object)
                    .iter()
                    .map(|r| r.host)
                    .filter(|h| self.fault_state.host_up(h.index() as u16))
                    .collect();
                if live.len() as u32 >= floor {
                    break;
                }
                let elapsed = now - self.below_min_since.get(&i).copied().unwrap_or(now);
                let target = if let Some(&source) = live.first() {
                    // Copy onto the live host with the most headroom on
                    // the load-report board (ties broken by node id).
                    let holders: Vec<NodeId> = self
                        .redirector
                        .replicas(object)
                        .iter()
                        .map(|r| r.host)
                        .collect();
                    let mut cands: Vec<(f64, usize)> = (0..self.hosts.len())
                        .filter(|&j| self.fault_state.host_up(j as u16))
                        .filter(|&j| !holders.contains(&NodeId::new(j as u16)))
                        .map(|j| {
                            (
                                self.hosts[j].params().low_watermark - self.load_reports[j].1,
                                j,
                            )
                        })
                        .collect();
                    if cands.is_empty() {
                        break; // fewer live hosts than the floor
                    }
                    cands.sort_by(|a, b| {
                        b.0.partial_cmp(&a.0)
                            .expect("headroom is never NaN")
                            .then(a.1.cmp(&b.1))
                    });
                    let target = NodeId::new(cands[0].1 as u16);
                    let hops = self.routes.distance(source, target);
                    self.metrics
                        .record_overhead(now, (self.scenario.object_size * hops as u64) as f64);
                    self.charge_links(source, target, self.scenario.object_size);
                    target
                } else {
                    // Origin fetch: every copy was lost with its hosts.
                    let Some(p) = self.live_primary(object) else {
                        break; // the whole platform is down
                    };
                    p
                };
                self.install(object, target);
                self.metrics.re_replications += 1;
                if self.events.tracing {
                    let qd = self.queue.len() as u32;
                    self.events.emit(
                        now,
                        qd,
                        0,
                        ObsEventKind::ReReplication {
                            object: i,
                            target: target.index() as u16,
                            elapsed,
                        },
                    );
                }
                for obs in &mut self.events.observers {
                    obs.on_re_replication(now, i, target.index() as u16, elapsed);
                }
            }
            self.refresh_one(now, object);
        }
    }

    /// Debug-build check of the protocol's replica-set subset invariant:
    /// every replica the redirector knows physically exists on its host.
    fn debug_check_invariants(&self) {
        if cfg!(debug_assertions) {
            for i in 0..self.scenario.num_objects {
                let object = ObjectId::new(i);
                for info in self.redirector.replicas(object) {
                    debug_assert!(
                        self.hosts[info.host.index()].has_object(object),
                        "replica-set invariant violated: redirector lists {object}@{} \
                         but the host does not hold it",
                        info.host
                    );
                }
                // Crashes can transiently leave an object with no
                // replicas (until the sweep restores it), so the
                // last-replica invariant only holds on fault-free runs.
                debug_assert!(
                    self.redirector.replica_count(object) >= 1 || !self.scenario.faults.is_empty(),
                    "object {object} lost its last replica"
                );
            }
        }
    }

    fn finalize(mut self) -> RunReport {
        // Close the unavailability intervals still open at the end of
        // the run (replica-floor intervals never restored stay out of
        // the restore-time distribution: they have no restore).
        let end = self.scenario.duration;
        for (_, since) in std::mem::take(&mut self.unavailable_since) {
            self.metrics.unavailable_object_seconds += end - since;
        }
        let final_replicas = (0..self.scenario.num_objects)
            .map(|i| {
                self.redirector
                    .replicas(ObjectId::new(i))
                    .iter()
                    .map(|r| (r.host.index() as u16, r.aff))
                    .collect()
            })
            .collect();
        let link_traffic: Vec<((u16, u16), f64)> = self
            .scenario
            .topology
            .links()
            .iter()
            .zip(&self.metrics.link_bytes)
            .map(|(&(a, b), &bytes)| ((a.index() as u16, b.index() as u16), bytes))
            .collect();
        let profile = self.profile.take();
        if let Some(profile) = &profile {
            for obs in &mut self.events.observers {
                obs.on_loop_profile(profile);
            }
        }
        let mut report = RunReport::from_metrics(
            self.metrics,
            self.workload.name().to_string(),
            self.selection.name().to_string(),
            self.scenario.placement == PlacementMode::Dynamic,
            self.scenario.duration,
        );
        report.final_replicas = final_replicas;
        report.link_traffic = link_traffic;
        report.trace = self
            .recorded
            .map(|entries| entries.into_iter().collect::<Trace>());
        report.loop_profile = profile;
        report
    }
}

/// Placeholder workload for replay mode (never consulted: arrivals come
/// from the trace).
#[derive(Debug)]
struct NullWorkload;

impl Workload for NullWorkload {
    fn choose(&mut self, _now: f64, _gateway: NodeId, _rng: &mut SimRng) -> ObjectId {
        unreachable!("replay mode never samples a workload")
    }

    fn name(&self) -> &str {
        "replay"
    }
}

/// The placement environment the simulator exposes to a deciding host:
/// all *other* hosts (slot `self_index` holds a placeholder), the
/// redirector, and overhead accounting.
struct SimEnv<'a> {
    self_index: usize,
    hosts: &'a mut [HostState],
    redirector: &'a mut Redirector,
    metrics: &'a mut Metrics,
    routes: &'a RoutingTable,
    paths: &'a [Vec<Vec<NodeId>>],
    link_index: &'a std::collections::HashMap<(u16, u16), usize>,
    catalog: &'a Catalog,
    load_reports: &'a [(f64, f64)],
    /// Host liveness snapshot: crashed hosts accept nothing and are
    /// skipped during offload-recipient discovery.
    alive: &'a [bool],
    object_size: u64,
    now: f64,
    /// Flight-recorder sink for replica-set change events (count
    /// resets) triggered by the placement run.
    events: &'a mut EventSink,
    /// Queue depth snapshot at the placement event, stamped onto events
    /// emitted during it.
    queue_depth: u32,
}

impl SimEnv<'_> {
    /// Emits a `CountsReset` flight-recorder event (replica-set change →
    /// "request counts are re-initialized to 1", §4.1).
    fn emit_counts_reset(&mut self, object: ObjectId, cause: &str) {
        if !self.events.tracing {
            return;
        }
        self.events.emit(
            self.now,
            self.queue_depth,
            0,
            ObsEventKind::CountsReset {
                object: object.index() as u32,
                cause: cause.to_string(),
            },
        );
    }
}

impl PlacementEnv for SimEnv<'_> {
    fn create_obj(&mut self, target: NodeId, req: CreateObjRequest) -> CreateObjResponse {
        assert_ne!(
            target.index(),
            self.self_index,
            "a host never offers an object to itself"
        );
        if !self.alive[target.index()] {
            // A crashed candidate cannot respond to CreateObj.
            return CreateObjResponse::Refused;
        }
        let host = &mut self.hosts[target.index()];
        let resp = handle_create_obj(host, self.now, &req);
        if let CreateObjResponse::Accepted { new_copy } = resp {
            // Notify the redirector *after* the copy exists.
            self.redirector.notify_created(req.object, target);
            self.emit_counts_reset(req.object, "created");
            if new_copy {
                // The object data crosses the backbone: overhead traffic.
                let hops = self.routes.distance(req.source, target);
                self.metrics
                    .record_overhead(self.now, (self.object_size * hops as u64) as f64);
                let path = &self.paths[req.source.index()][target.index()];
                for w in path.windows(2) {
                    let (a, b) = (w[0].index() as u16, w[1].index() as u16);
                    let idx = self.link_index[&(a.min(b), a.max(b))];
                    self.metrics.link_bytes[idx] += self.object_size as f64;
                }
            }
        }
        resp
    }

    fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        let approved = self.redirector.request_drop(object, host);
        if approved {
            self.emit_counts_reset(object, "dropped");
        }
        approved
    }

    fn notify_affinity(&mut self, object: ObjectId, host: NodeId, aff: u32) {
        self.redirector.notify_affinity(object, host, aff);
        self.emit_counts_reset(object, "affinity");
    }

    fn find_offload_recipient(&mut self, requester: NodeId) -> Option<(NodeId, f64)> {
        // "Hosts periodically exchange load reports, so that each host
        // knows a few probable candidates": *discovery* reads the
        // gossiped board (up to one measurement interval stale), but the
        // paper's recipient "responds to the requesting host with its
        // load value" — acceptance is a fresh check at the candidate.
        // Without the fresh check, every overloaded host in an epoch
        // herds onto the same stale best candidate and offloading
        // starves. Candidates are ranked by board headroom against their
        // *own* low watermarks (hosts may be heterogeneous); the first
        // few are probed.
        const PROBES: usize = 5;
        let mut candidates: Vec<(f64, usize)> = self
            .hosts
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != self.self_index && j != requester.index() && self.alive[j])
            .filter_map(|(j, host)| {
                let (_, reported) = self.load_reports[j];
                let headroom = host.params().low_watermark - reported;
                (headroom > 0.0).then_some((headroom, j))
            })
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite headroom"));
        for &(_, j) in candidates.iter().take(PROBES) {
            let host = &mut self.hosts[j];
            host.advance(self.now);
            let current = host.load_upper();
            if current < host.params().low_watermark {
                return Some((host.node(), current));
            }
        }
        None
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.routes.distance(a, b)
    }

    fn may_replicate(&self, object: ObjectId) -> bool {
        self.catalog
            .kind(object)
            .may_add_replica(self.redirector.replica_count(object))
    }
}
