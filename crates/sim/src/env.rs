//! The placement layer: the environment a deciding host sees
//! ([`SimEnv`]) and the periodic handlers (placement epochs, load
//! sampling, provider updates).
//!
//! Placement epochs run inside a directory batch
//! ([`radar_core::Directory::begin_batch`]): replica-set membership
//! changes apply immediately (drop arbitration and replication caps
//! read live state), while the accompanying request-count resets
//! coalesce to one per touched object at commit. No redirect runs
//! between the mutations of one epoch, so the observable decision
//! stream is identical to unbatched resets.

use radar_core::placement::{handle_create_obj, PlacementEnv};
use radar_core::{
    Catalog, CreateObjRequest, CreateObjResponse, HostState, ObjectId, ObjectKind, Redirector,
};
use radar_obs::{
    ConsistencyClass, EventKind as ObsEventKind, PlacementActionEvent, PlacementActionKind,
    ProviderUpdateEvent, ResetCause, UpdateDeliveredEvent,
};
use radar_simcore::{SimDuration, SimTime};
use radar_simnet::{NodeId, RoutingView};

use crate::metrics::{LoadEstimateSample, Metrics};
use crate::platform::{Event, Simulation};
use crate::sink::EventSink;

impl Simulation {
    pub(crate) fn on_load_sample(&mut self, t: SimTime) {
        let now = t.as_secs();
        let mut max = 0.0f64;
        let mut max_host = 0u16;
        for (i, host) in self.hosts.iter_mut().enumerate() {
            if !self.fault_state.host_up(i as u16) {
                // A crashed host publishes nothing; an infinite report
                // keeps it off everyone's offload candidate list.
                self.load_reports[i] = (now, f64::INFINITY);
                continue;
            }
            host.advance(now);
            // Publish this measurement round's load report.
            self.load_reports[i] = (now, host.load_upper());
            if host.measured_load() > max {
                max = host.measured_load();
                max_host = i as u16;
            }
        }
        self.metrics.max_load.record(now, max);
        self.metrics.max_load_host.push((now, max_host, max));
        for obs in &mut self.events.observers {
            obs.on_load_sample(now, max);
        }
        // Replica census for Table 2 (sampled here rather than at
        // placement epochs so static runs are covered too). The
        // directory maintains the total incrementally, so this no longer
        // rescans every object's replica set.
        let total = self.redirector.total_replicas();
        let avg = total as f64 / self.scenario.num_objects as f64;
        self.metrics.replica_series.push((now, avg));
        let tracked = &self.hosts[self.scenario.tracked_host as usize];
        self.metrics.load_estimates.push(LoadEstimateSample {
            t: now,
            actual: tracked.measured_load(),
            upper: tracked.load_upper(),
            lower: tracked.load_lower(),
        });
        let next = t + SimDuration::from_secs(self.scenario.params.measurement_interval);
        if next.as_secs() <= self.scenario.duration {
            self.queue.schedule(next, Event::LoadSample);
        }
    }

    pub(crate) fn on_placement(&mut self, t: SimTime, node: NodeId) {
        let now = t.as_secs();
        let i = node.index();
        if !self.fault_state.host_up(i as u16) {
            // A crashed host makes no placement decisions, but its timer
            // keeps ticking so decisions resume after recovery.
            let next = t + SimDuration::from_secs(self.scenario.params.placement_period);
            if next.as_secs() <= self.scenario.duration {
                self.queue.schedule(next, Event::Placement { host: node });
            }
            return;
        }
        self.alive_scratch.clear();
        for j in 0..self.hosts.len() {
            let up = self.fault_state.host_up(j as u16);
            self.alive_scratch.push(up);
        }
        // Swap the deciding host out of the vector (into the persistent
        // spare slot) so the environment can borrow the rest mutably —
        // no fresh placeholder `HostState` per epoch.
        std::mem::swap(&mut self.hosts[i], &mut self.spare_host);
        // One placement epoch = one directory batch: count resets for
        // objects this epoch touches apply once, at commit.
        self.redirector.begin_batch();
        let queue_depth = self.depth();
        {
            let mut env = SimEnv {
                self_index: i,
                hosts: &mut self.hosts,
                redirector: &mut self.redirector,
                metrics: &mut self.metrics,
                view: &self.view,
                catalog: &self.catalog,
                load_reports: &self.load_reports,
                alive: &self.alive_scratch,
                offload_probes: &mut self.offload_probe_scratch,
                object_size: self.scenario.object_size,
                now,
                events: &mut self.events,
                queue_depth,
            };
            self.placement_policy.run_epoch(
                &mut self.spare_host,
                now,
                &mut env,
                &mut self.placement_scratch,
                &mut self.placement_outcome,
            );
        }
        self.redirector.commit_batch();
        let outcome = &self.placement_outcome;
        if self.events.tracing {
            // One flight-recorder event per placement decision, carrying
            // the threshold comparison that triggered it.
            let qd = self.depth();
            for d in &outcome.decisions {
                self.events.emit(
                    now,
                    qd,
                    0,
                    ObsEventKind::PlacementAction(PlacementActionEvent {
                        host: i as u16,
                        object: d.object.index() as u32,
                        action: action_kind(d.action),
                        target: d.target.map(|n| n.index() as u16),
                        unit_rate: d.unit_rate,
                        share: d.share,
                        ratio: d.ratio,
                        deletion_threshold: d.deletion_threshold,
                        replication_threshold: d.replication_threshold,
                    }),
                );
            }
        }
        let log_before = self.metrics.relocation_log.len();
        self.metrics
            .record_placement(now, i as u16, &self.placement_outcome);
        if !self.events.observers.is_empty() {
            for k in log_before..self.metrics.relocation_log.len() {
                let event = self.metrics.relocation_log[k];
                for obs in &mut self.events.observers {
                    obs.on_relocation(&event);
                }
            }
        }
        std::mem::swap(&mut self.hosts[i], &mut self.spare_host);
        self.debug_check_invariants();
        let next = t + SimDuration::from_secs(self.scenario.params.placement_period);
        if next.as_secs() <= self.scenario.duration {
            self.queue.schedule(next, Event::Placement { host: node });
        }
    }

    /// A provider update (§5): pick a random object and dispatch on its
    /// consistency class. Type-1 (primary-copy) and type-2 (commuting)
    /// objects propagate the new version asynchronously — per-target
    /// [`Event::UpdateDeliver`] events measure each replica's staleness
    /// window — while type-3 (non-commuting) objects apply the update
    /// synchronously at every copy: the bandwidth is charged but no
    /// replica is ever stale. If the primary's host no longer holds the
    /// object (it migrated or was dropped), the primary moves to the
    /// object's lowest-id replica — "the location of the primary copy is
    /// tracked by the object's redirector".
    pub(crate) fn on_provider_update(&mut self, t: SimTime) {
        let now = t.as_secs();
        let gap = self.rng.exponential(self.scenario.update_rate);
        self.queue
            .schedule(t + SimDuration::from_secs(gap), Event::ProviderUpdate);

        let object = ObjectId::new(self.rng.index(self.scenario.num_objects as usize) as u32);
        let replicas = self.redirector.replicas(object);
        debug_assert!(
            !replicas.is_empty() || !self.scenario.faults.is_empty(),
            "every object keeps a replica"
        );
        if replicas.is_empty() {
            // Every copy is on a purged host; the re-replication sweep
            // will restore the object — nothing to propagate to.
            return;
        }
        let kind = self.catalog.kind(object);
        let mut primary = self.catalog.primary(object);
        let mut reassigned = false;
        if !replicas.iter().any(|r| r.host == primary) {
            // Prefer a live replica as the new primary (they are all
            // live on fault-free runs, where this picks replicas[0]).
            primary = replicas
                .iter()
                .map(|r| r.host)
                .find(|h| self.fault_state.host_up(h.index() as u16))
                .unwrap_or(replicas[0].host);
            self.catalog.set_primary(object, primary);
            reassigned = true;
        }
        let bytes = self.catalog.object_size();
        let targets: Vec<NodeId> = replicas
            .iter()
            .filter(|r| r.host != primary)
            .map(|r| r.host)
            .collect();
        let bytes_hops: u64 = targets
            .iter()
            .map(|&t| bytes * self.view.distance(primary, t) as u64)
            .sum();
        for &target in &targets {
            self.charge_links(primary, target, bytes);
        }
        let version = self.redirector.bump_update_version(object);
        self.metrics
            .record_update(now, bytes_hops as f64, reassigned, class_index(kind));
        if matches!(kind, ObjectKind::Immutable | ObjectKind::CommutingUpdates) {
            // Asynchronous propagation: each secondary learns the new
            // version one store-and-forward transfer later.
            for &target in &targets {
                let delay = self.transfer(primary, target, bytes);
                self.queue.schedule(
                    t + SimDuration::from_secs(delay),
                    Event::UpdateDeliver {
                        object,
                        target,
                        version,
                        issued: t,
                    },
                );
            }
        }
        if self.events.tracing {
            let qd = self.depth();
            self.events.emit(
                now,
                qd,
                0,
                ObsEventKind::ProviderUpdate(ProviderUpdateEvent {
                    object: object.index() as u32,
                    class: class_tag(kind),
                    version,
                    primary: primary.index() as u16,
                    targets: targets.len() as u16,
                    bytes_hops,
                    reassigned,
                }),
            );
        }
    }

    /// One asynchronously propagated provider update reaching one
    /// replica (§5). The target may have dropped the object (or been
    /// purged) while the update was in flight — that delivery is wasted:
    /// its traffic was already charged at issue, and it carries no
    /// staleness sample because there is no replica left to be stale.
    pub(crate) fn on_update_deliver(
        &mut self,
        t: SimTime,
        object: ObjectId,
        target: NodeId,
        version: u64,
        issued: SimTime,
    ) {
        let now = t.as_secs();
        let lag = (t - issued).as_secs();
        let kind = self.catalog.kind(object);
        let wasted = !self
            .redirector
            .replicas(object)
            .iter()
            .any(|r| r.host == target);
        self.metrics
            .record_update_delivery(class_index(kind), lag, wasted);
        if self.events.tracing {
            let qd = self.depth();
            self.events.emit(
                now,
                qd,
                0,
                ObsEventKind::UpdateDelivered(UpdateDeliveredEvent {
                    object: object.index() as u32,
                    host: target.index() as u16,
                    class: class_tag(kind),
                    version,
                    lag,
                    wasted,
                }),
            );
        }
    }
}

/// The §5 taxonomy index of an object kind (0 = type-1, 1 = type-2,
/// 2 = type-3), used by the metrics layer's per-class accounting.
fn class_index(kind: ObjectKind) -> usize {
    match kind {
        ObjectKind::Immutable => 0,
        ObjectKind::CommutingUpdates => 1,
        ObjectKind::NonCommuting { .. } => 2,
    }
}

/// The flight recorder's interned tag for an object's consistency
/// class.
fn class_tag(kind: ObjectKind) -> ConsistencyClass {
    match kind {
        ObjectKind::Immutable => ConsistencyClass::Type1,
        ObjectKind::CommutingUpdates => ConsistencyClass::Type2,
        ObjectKind::NonCommuting { .. } => ConsistencyClass::Type3,
    }
}

/// Maps the core protocol's placement action onto the flight
/// recorder's interned event tag.
fn action_kind(action: radar_core::placement::PlacementAction) -> PlacementActionKind {
    use radar_core::placement::PlacementAction as Core;
    match action {
        Core::Drop => PlacementActionKind::Drop,
        Core::AffinityReduce => PlacementActionKind::AffinityReduce,
        Core::DropRefused => PlacementActionKind::DropRefused,
        Core::GeoMigrate => PlacementActionKind::GeoMigrate,
        Core::GeoReplicate => PlacementActionKind::GeoReplicate,
        Core::LoadMigrate => PlacementActionKind::LoadMigrate,
        Core::LoadReplicate => PlacementActionKind::LoadReplicate,
    }
}

/// How many ranked candidates offload-recipient discovery probes with a
/// fresh load check (§4.2.2's "a few probable candidates").
const OFFLOAD_PROBES: usize = 5;

/// Ranks offload candidates `(headroom, host index)` — highest headroom
/// first, lowest index breaking ties — and returns the leading `probes`
/// entries in that order. A partial selection places the leaders and
/// then sorts only them, instead of fully sorting every candidate to
/// examine five. The index tiebreak makes the order total, so the probe
/// prefix is identical to what the previous full stable sort (no
/// tiebreak, insertion order = ascending index) produced.
fn select_probe_candidates(candidates: &mut [(f64, usize)], probes: usize) -> &[(f64, usize)] {
    fn cmp(a: &(f64, usize), b: &(f64, usize)) -> std::cmp::Ordering {
        b.0.partial_cmp(&a.0)
            .expect("finite headroom")
            .then(a.1.cmp(&b.1))
    }
    let k = candidates.len().min(probes);
    if candidates.len() > k && k > 0 {
        candidates.select_nth_unstable_by(k - 1, cmp);
    }
    let lead = &mut candidates[..k];
    lead.sort_unstable_by(cmp);
    lead
}

/// The placement environment the simulator exposes to a deciding host:
/// all *other* hosts (slot `self_index` holds a placeholder), the
/// redirector, and overhead accounting.
struct SimEnv<'a> {
    self_index: usize,
    hosts: &'a mut [HostState],
    redirector: &'a mut Redirector,
    metrics: &'a mut Metrics,
    view: &'a RoutingView,
    catalog: &'a Catalog,
    load_reports: &'a [(f64, f64)],
    /// Host liveness snapshot: crashed hosts accept nothing and are
    /// skipped during offload-recipient discovery.
    alive: &'a [bool],
    /// Reusable `(headroom, host index)` buffer for offload-recipient
    /// discovery.
    offload_probes: &'a mut Vec<(f64, usize)>,
    object_size: u64,
    now: f64,
    /// Flight-recorder sink for replica-set change events (count
    /// resets) triggered by the placement run.
    events: &'a mut EventSink,
    /// Queue depth snapshot at the placement event, stamped onto events
    /// emitted during it.
    queue_depth: u32,
}

impl SimEnv<'_> {
    /// Emits a `CountsReset` flight-recorder event (replica-set change →
    /// "request counts are re-initialized to 1", §4.1). Emission stays
    /// per-mutation even though the batched directory applies the
    /// actual resets once per object at epoch commit — the recorded
    /// protocol chatter is unchanged by batching.
    fn emit_counts_reset(&mut self, object: ObjectId, cause: ResetCause) {
        if !self.events.tracing {
            return;
        }
        self.events.emit(
            self.now,
            self.queue_depth,
            0,
            ObsEventKind::CountsReset {
                object: object.index() as u32,
                cause,
            },
        );
    }
}

impl PlacementEnv for SimEnv<'_> {
    fn create_obj(&mut self, target: NodeId, req: CreateObjRequest) -> CreateObjResponse {
        assert_ne!(
            target.index(),
            self.self_index,
            "a host never offers an object to itself"
        );
        if !self.alive[target.index()] {
            // A crashed candidate cannot respond to CreateObj.
            return CreateObjResponse::Refused;
        }
        let host = &mut self.hosts[target.index()];
        let resp = handle_create_obj(host, self.now, &req);
        if let CreateObjResponse::Accepted { new_copy } = resp {
            // Notify the redirector *after* the copy exists.
            self.redirector.notify_created(req.object, target);
            self.emit_counts_reset(req.object, ResetCause::Created);
            if new_copy {
                // The object data crosses the backbone: overhead traffic.
                let hops = self.view.distance(req.source, target);
                self.metrics
                    .record_overhead(self.now, (self.object_size * hops as u64) as f64);
                let path = self.view.path(req.source, target);
                for w in path.windows(2) {
                    let idx = self.view.link_id(w[0], w[1]).expect("adjacent on a path");
                    self.metrics.link_bytes[idx] += self.object_size as f64;
                }
            }
        }
        resp
    }

    fn request_drop(&mut self, object: ObjectId, host: NodeId) -> bool {
        let approved = self.redirector.request_drop(object, host);
        if approved {
            self.emit_counts_reset(object, ResetCause::Dropped);
        }
        approved
    }

    fn notify_affinity(&mut self, object: ObjectId, host: NodeId, aff: u32) {
        self.redirector.notify_affinity(object, host, aff);
        self.emit_counts_reset(object, ResetCause::Affinity);
    }

    fn find_offload_recipient(&mut self, requester: NodeId) -> Option<(NodeId, f64)> {
        // "Hosts periodically exchange load reports, so that each host
        // knows a few probable candidates": *discovery* reads the
        // gossiped board (up to one measurement interval stale), but the
        // paper's recipient "responds to the requesting host with its
        // load value" — acceptance is a fresh check at the candidate.
        // Without the fresh check, every overloaded host in an epoch
        // herds onto the same stale best candidate and offloading
        // starves. Candidates are ranked by board headroom against their
        // *own* low watermarks (hosts may be heterogeneous); the first
        // few are probed, so only those few are ever ordered.
        let SimEnv {
            self_index,
            hosts,
            load_reports,
            alive,
            offload_probes,
            now,
            ..
        } = self;
        offload_probes.clear();
        offload_probes.extend(
            hosts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != *self_index && j != requester.index() && alive[j])
                .filter_map(|(j, host)| {
                    let (_, reported) = load_reports[j];
                    let headroom = host.params().low_watermark - reported;
                    (headroom > 0.0).then_some((headroom, j))
                }),
        );
        for &(_, j) in select_probe_candidates(offload_probes.as_mut_slice(), OFFLOAD_PROBES) {
            let host = &mut hosts[j];
            host.advance(*now);
            let current = host.load_upper();
            if current < host.params().low_watermark {
                return Some((host.node(), current));
            }
        }
        None
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.view.distance(a, b)
    }

    fn may_replicate(&self, object: ObjectId) -> bool {
        self.catalog
            .kind(object)
            .may_add_replica(self.redirector.replica_count(object))
    }

    fn replica_count(&self, object: ObjectId) -> usize {
        self.redirector.replica_count(object)
    }
}

#[cfg(test)]
mod tests {
    use super::select_probe_candidates;
    use radar_simcore::SimRng;

    /// The pre-optimization ranking: full stable sort, descending
    /// headroom, *no* tiebreak — ties keep insertion (ascending index)
    /// order.
    fn reference_probes(mut candidates: Vec<(f64, usize)>, probes: usize) -> Vec<(f64, usize)> {
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite headroom"));
        candidates.truncate(probes);
        candidates
    }

    #[test]
    fn probe_order_matches_full_sort() {
        // Randomized candidate boards, with deliberate headroom ties
        // (quantized values), must yield byte-identical probe prefixes.
        let mut rng = SimRng::seed_from(0x00FF_10AD);
        for len in 0..40usize {
            for _ in 0..20 {
                let candidates: Vec<(f64, usize)> =
                    (0..len).map(|j| (rng.index(6) as f64 * 2.5, j)).collect();
                let reference = reference_probes(candidates.clone(), 5);
                let mut buf = candidates;
                let got = select_probe_candidates(&mut buf, 5).to_vec();
                assert_eq!(got, reference, "len {len}");
            }
        }
    }

    #[test]
    fn probe_order_handles_degenerate_sizes() {
        let mut empty: Vec<(f64, usize)> = Vec::new();
        assert!(select_probe_candidates(&mut empty, 5).is_empty());
        let mut one = vec![(3.0, 7)];
        assert_eq!(select_probe_candidates(&mut one, 5), &[(3.0, 7)]);
        // Exactly `probes` candidates: no selection step, just the sort.
        let mut exact = vec![(1.0, 4), (9.0, 1), (1.0, 0), (9.0, 3), (5.0, 2)];
        assert_eq!(
            select_probe_candidates(&mut exact, 5),
            &[(9.0, 1), (9.0, 3), (5.0, 2), (1.0, 0), (1.0, 4)]
        );
    }
}
