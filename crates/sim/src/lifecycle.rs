//! Request-lifecycle handlers: arrival → redirect → host arrival →
//! service completion, plus the network-delay helpers they share.
//!
//! All routing questions (distances, preference paths, reachability) go
//! through the platform's [`radar_simnet::RoutingView`]; replica
//! decisions go through the [`crate::redirect::RedirectEngine`] when
//! the selection policy supports candidate caching, and the pluggable
//! [`crate::selection::SelectionPolicy`] surface otherwise.

use radar_core::{ChoiceBranch, ChoiceExplanation, ObjectId};
use radar_obs::{
    CandidateSnapshot, DecisionBranch, DecisionEvent, EventKind as ObsEventKind, FailReason,
};
use radar_simcore::{SimDuration, SimTime};
use radar_simnet::NodeId;

use crate::observer::{FailureReason, RequestRecord};
use crate::platform::{Event, Simulation};
use crate::trace::TraceEntry;

/// The flight-recorder tag for a simulation-level failure reason.
fn fail_reason_tag(reason: FailureReason) -> FailReason {
    match reason {
        FailureReason::AllReplicasDown => FailReason::AllReplicasDown,
        FailureReason::Unreachable => FailReason::Unreachable,
        FailureReason::CrashedMidService => FailReason::CrashedMidService,
    }
}

/// Fills a flight-recorder [`DecisionEvent`] from a redirect outcome.
/// Shared between the serial redirect handler and the sharded
/// sequencer's deferred commits, so both produce byte-identical decision
/// records. `explanation` is `Some` when the Fig. 2 branch data was
/// captured; otherwise the branch collapses to `PrimaryFallback` or
/// `Policy` per `fallback_used`.
pub(crate) fn fill_decision(
    d: &mut DecisionEvent,
    object: ObjectId,
    gateway: NodeId,
    host: NodeId,
    explanation: Option<&ChoiceExplanation>,
    fallback_used: bool,
    constant: f64,
) {
    d.object = object.index() as u32;
    d.gateway = gateway.index() as u16;
    d.chosen = host.index() as u16;
    if let Some(scratch) = explanation {
        d.branch = match scratch.branch {
            ChoiceBranch::Closest => DecisionBranch::Closest,
            ChoiceBranch::LeastRequested => DecisionBranch::LeastRequested,
        };
        d.constant = scratch.constant;
        d.closest = Some(scratch.closest.index() as u16);
        d.least = Some(scratch.least.index() as u16);
        d.unit_closest = Some(scratch.unit_closest);
        d.unit_least = Some(scratch.unit_least);
        d.candidates
            .extend(scratch.candidates.iter().map(|c| CandidateSnapshot {
                host: c.host.index() as u16,
                rcnt: c.rcnt,
                aff: c.aff,
                unit: c.unit_rcnt(),
                distance: c.distance,
            }));
    } else {
        // Either the selection policy has no Fig. 2 data (a baseline)
        // or no usable replica existed and the primary fallback served.
        d.branch = if fallback_used {
            DecisionBranch::PrimaryFallback
        } else {
            DecisionBranch::Policy
        };
        d.constant = constant;
        d.closest = None;
        d.least = None;
        d.unit_closest = None;
        d.unit_least = None;
    }
}

impl Simulation {
    /// `true` when nodes `a` and `b` can currently exchange traffic
    /// (always true until a link partition severs them).
    pub(crate) fn connected(&self, a: NodeId, b: NodeId) -> bool {
        !self.view.path(a, b).is_empty()
    }

    /// Propagation-only delay over the current route, honoring per-link
    /// degradation factors. Callers must have checked [`connected`](Self::connected).
    pub(crate) fn propagation(&self, from: NodeId, to: NodeId) -> f64 {
        if !self.fault_state.any_link_degraded() {
            return self
                .scenario
                .network
                .propagation_time(self.view.distance(from, to));
        }
        self.scenario.network.hop_delay * self.weighted_hops(from, to)
    }

    /// Store-and-forward transfer time over the current route. Degraded
    /// links stretch the propagation term only — the bandwidth term of
    /// the §6.1 cost model is a link property, not a congestion signal.
    pub(crate) fn transfer(&self, from: NodeId, to: NodeId, bytes: u64) -> f64 {
        let hops = self.view.distance(from, to);
        if !self.fault_state.any_link_degraded() {
            return self.scenario.network.transfer_time(bytes, hops);
        }
        self.scenario.network.hop_delay * self.weighted_hops(from, to)
            + hops as f64 * (bytes as f64 / self.scenario.network.link_bandwidth)
    }

    /// Sum of per-link delay factors along the current route (equals the
    /// hop count when nothing is degraded).
    fn weighted_hops(&self, from: NodeId, to: NodeId) -> f64 {
        self.view
            .path(from, to)
            .windows(2)
            .map(|w| {
                self.fault_state
                    .link_factor(w[0].index() as u16, w[1].index() as u16)
            })
            .sum()
    }

    /// Charges `bytes` to every link on the current path from `from` to
    /// `to`.
    pub(crate) fn charge_links(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        let path = self.view.path(from, to);
        for w in path.windows(2) {
            let idx = self.view.link_id(w[0], w[1]).expect("adjacent on a path");
            self.metrics.link_bytes[idx] += bytes as f64;
        }
    }

    pub(crate) fn fail_request(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        reason: FailureReason,
        cause: u64,
    ) {
        self.metrics.failed_requests += 1;
        let now = t.as_secs();
        if self.events.tracing {
            let qd = self.depth();
            self.events.emit(
                now,
                qd,
                cause,
                ObsEventKind::RequestFailed {
                    gateway: gateway.index() as u16,
                    object: object.index() as u32,
                    reason: fail_reason_tag(reason),
                },
            );
        }
        for obs in &mut self.events.observers {
            obs.on_request_failed(now, object.index() as u32, gateway.index() as u16, reason);
        }
    }

    pub(crate) fn on_arrival(&mut self, t: SimTime, gateway: NodeId) {
        // Next arrival of this stream.
        let gap = self.arrivals[gateway.index()].next_interarrival(&mut self.rng);
        self.queue
            .schedule(t + SimDuration::from_secs(gap), Event::Arrival { gateway });

        let object = self.workload.choose(t.as_secs(), gateway, &mut self.rng);
        if let Some(recorded) = &mut self.recorded {
            recorded.push(TraceEntry {
                t: t.as_secs(),
                gateway: gateway.index() as u16,
                object: object.index() as u32,
            });
        }
        // Gateway → the object's redirector: propagation only (requests
        // are tiny).
        let cause = self.emit_arrival(t, object, gateway);
        let rnode = self.redirector_node_of(object);
        if !self.connected(gateway, rnode) {
            self.fail_request(t, object, gateway, FailureReason::Unreachable, cause);
            return;
        }
        let delay = self.propagation(gateway, rnode);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::Redirect {
                object,
                gateway,
                t0: t,
                cause,
            },
        );
    }

    /// Emits the root of a request's causal chain (a `RequestArrived`
    /// event) and returns its sequence number (0 when tracing is off).
    fn emit_arrival(&mut self, t: SimTime, object: ObjectId, gateway: NodeId) -> u64 {
        if !self.events.tracing {
            return 0;
        }
        let qd = self.depth();
        self.events.emit(
            t.as_secs(),
            qd,
            0,
            ObsEventKind::RequestArrived {
                gateway: gateway.index() as u16,
                object: object.index() as u32,
            },
        )
    }

    pub(crate) fn on_trace_arrival(&mut self, t: SimTime, index: usize) {
        let trace = self.replay.as_ref().expect("replay trace present");
        let entry = trace.entries()[index];
        if let Some(next) = trace.entries().get(index + 1) {
            let at = SimTime::from_secs(next.t).max(t);
            self.queue
                .schedule(at, Event::TraceArrival { index: index + 1 });
        }
        let gateway = NodeId::new(entry.gateway);
        let object = ObjectId::new(entry.object);
        if let Some(recorded) = &mut self.recorded {
            recorded.push(TraceEntry {
                t: t.as_secs(),
                gateway: entry.gateway,
                object: entry.object,
            });
        }
        let cause = self.emit_arrival(t, object, gateway);
        let rnode = self.redirector_node_of(object);
        if !self.connected(gateway, rnode) {
            self.fail_request(t, object, gateway, FailureReason::Unreachable, cause);
            return;
        }
        let delay = self.propagation(gateway, rnode);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::Redirect {
                object,
                gateway,
                t0: t,
                cause,
            },
        );
    }

    pub(crate) fn on_redirect(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        t0: SimTime,
        cause: u64,
    ) {
        let rnode = self.redirector_node_of(object);
        self.metrics.redirector_requests[rnode.index()] += 1;
        // When tracing, the chosen path fills `explain_scratch` in place
        // and sets this flag — no per-request explanation allocation.
        let mut explained = false;
        let chosen = if self.selection.supports_candidate_cache() {
            // The engine applies the same usability filter and distance
            // source as the policy path below, but reuses the candidate
            // list across requests (invalidated by directory, routing,
            // and fault generations). Each decision also tallies the
            // engine's hit/miss counters; under `--profile` a sharded
            // run credits this serial-window traffic to the sequencer
            // lane of the shard profile.
            let explanation = if self.events.tracing {
                explained = true;
                Some(&mut self.explain_scratch)
            } else {
                None
            };
            let pick = self.redirect.choose(
                object,
                gateway,
                rnode,
                &mut self.redirector,
                &self.view,
                &self.fault_state,
                self.fault_gen,
                explanation,
            );
            if pick.is_none() {
                explained = false;
            }
            pick
        } else {
            // A replica is usable when its host is up and traffic can
            // flow redirector → host and host → gateway.
            let fault_state = &self.fault_state;
            let view = &self.view;
            let usable = |h: NodeId| {
                fault_state.host_up(h.index() as u16)
                    && !view.path(rnode, h).is_empty()
                    && !view.path(h, gateway).is_empty()
            };
            if self.events.tracing {
                let (pick, explanation) = self.selection.choose_available_explained(
                    object,
                    gateway,
                    &mut self.redirector,
                    self.view.table(),
                    &usable,
                );
                if let Some(e) = explanation {
                    self.explain_scratch = e;
                    explained = true;
                }
                pick
            } else {
                self.selection.choose_available(
                    object,
                    gateway,
                    &mut self.redirector,
                    self.view.table(),
                    &usable,
                )
            }
        };
        let mut fallback_used = false;
        let host = match chosen {
            Some(h) => h,
            None => {
                // Graceful degradation: no usable replica, so fetch from
                // the provider's origin — modeled as re-installing the
                // object at its primary node (reassigned to the most
                // central live host when the primary itself is down).
                debug_assert!(
                    !self.scenario.faults.is_empty(),
                    "every object keeps at least one replica"
                );
                let now = t.as_secs();
                let fallback = self.live_primary(object).filter(|&p| {
                    !self.view.path(rnode, p).is_empty() && !self.view.path(p, gateway).is_empty()
                });
                let Some(p) = fallback else {
                    let any_live = self
                        .redirector
                        .replicas(object)
                        .iter()
                        .any(|r| self.fault_state.host_up(r.host.index() as u16));
                    let reason = if any_live {
                        FailureReason::Unreachable
                    } else {
                        FailureReason::AllReplicasDown
                    };
                    self.fail_request(t, object, gateway, reason, cause);
                    return;
                };
                if !self.redirector.replicas(object).iter().any(|r| r.host == p) {
                    self.install(object, p);
                    self.refresh_one(now, object);
                }
                self.metrics.primary_fallbacks += 1;
                fallback_used = true;
                p
            }
        };
        let decision = if self.events.tracing {
            let qd = self.depth();
            let scratch = &self.explain_scratch;
            let constant = self.scenario.params.distribution_constant;
            self.events.emit_decision(t.as_secs(), qd, cause, |d| {
                fill_decision(
                    d,
                    object,
                    gateway,
                    host,
                    explained.then_some(scratch),
                    fallback_used,
                    constant,
                );
            })
        } else {
            0
        };
        let delay = self.propagation(rnode, host);
        self.queue.schedule(
            t + SimDuration::from_secs(delay),
            Event::ArriveAtHost {
                object,
                gateway,
                host,
                t0,
                cause: decision,
            },
        );
    }

    pub(crate) fn on_arrive_at_host(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
        cause: u64,
    ) {
        let i = host.index();
        if !self.fault_state.host_up(i as u16) {
            // The host crashed while the redirect was in flight.
            self.fail_request(t, object, gateway, FailureReason::CrashedMidService, cause);
            return;
        }
        // Record the preference path (host → gateway) for placement.
        let path = self.view.path(host, gateway);
        self.hosts[i].record_access(object, path);
        // FIFO service.
        let outcome = self.servers[i].offer(t);
        // Latency breakdown: the redirect leg is everything before host
        // arrival; queueing is time until service begins.
        self.metrics.redirect_delay.record((t - t0).as_secs());
        self.metrics
            .queueing_delay
            .record(outcome.queueing_delay(t).as_secs());
        self.queue.schedule(
            outcome.completion,
            Event::ServiceComplete {
                object,
                gateway,
                host,
                t0,
                epoch: self.host_epoch[i],
                cause,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_service_complete(
        &mut self,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        host: NodeId,
        t0: SimTime,
        epoch: u32,
        cause: u64,
    ) {
        let i = host.index();
        if epoch != self.host_epoch[i] {
            // The host crashed while this request was queued or in
            // service; the work is lost.
            self.fail_request(t, object, gateway, FailureReason::CrashedMidService, cause);
            return;
        }
        self.hosts[i].record_serviced(t.as_secs(), object);
        if !self.connected(host, gateway) {
            // The response has nowhere to go: a partition opened while
            // the request was in service.
            self.fail_request(t, object, gateway, FailureReason::Unreachable, cause);
            return;
        }
        let hops = self.view.distance(host, gateway);
        let travel = self.transfer(host, gateway, self.scenario.object_size);
        let delivered = t + SimDuration::from_secs(travel);
        let latency = (delivered - t0).as_secs();
        let bytes_hops = (self.scenario.object_size * hops as u64) as f64;
        self.metrics
            .record_response(t.as_secs(), delivered.as_secs(), latency, bytes_hops);
        self.metrics.response_travel.record(travel);
        self.charge_links(host, gateway, self.scenario.object_size);
        let (from, to) = (
            self.node_regions[host.index()].index(),
            self.node_regions[gateway.index()].index(),
        );
        self.metrics.region_matrix[from][to] += bytes_hops;
        if self.events.tracing {
            let qd = self.depth();
            self.events.emit(
                t.as_secs(),
                qd,
                cause,
                ObsEventKind::RequestServed {
                    gateway: gateway.index() as u16,
                    object: object.index() as u32,
                    host: host.index() as u16,
                    latency,
                    hops,
                },
            );
        }
        if !self.events.observers.is_empty() {
            let record = RequestRecord {
                entered: t0.as_secs(),
                delivered: delivered.as_secs(),
                gateway: gateway.index() as u16,
                object: object.index() as u32,
                host: host.index() as u16,
                latency,
                hops,
            };
            for obs in &mut self.events.observers {
                obs.on_request_served(&record);
            }
        }
    }
}
