//! The sharded parallel event loop with deterministic epoch barriers.
//!
//! [`Simulation::run_sharded`] splits the object space across worker
//! threads by the same hash partition the paper uses for redirectors
//! (§2 — contiguous object-id ranges, [`radar_core::shard_ranges`]).
//! Each worker owns its slice of the directory
//! ([`radar_core::RedirectorShard`]) and of the redirect engine's
//! candidate cache ([`crate::redirect::EngineShard`]); the main thread
//! keeps sequencing the event queue and handles everything except the
//! hot redirect decision, which it *defers* to the owning shard.
//!
//! # The two modes
//!
//! The loop runs in **parallel mode** only while the platform is inside
//! an all-clear window: no fault of any kind active
//! ([`FaultState`](crate::faults) `all_clear`) and the topology fully
//! connected. Inside such a window every replica host is up and every
//! route intact, so the redirect usability filter passes every replica:
//! a decision can never come up empty, the primary-fallback path can
//! never run, and replica sets can only change at events the loop treats
//! as barriers. Outside the window — from the fault transition that
//! breaks it to the one that restores it — the loop falls back to the
//! **serial** handler for every event, which is trivially equivalent to
//! [`Simulation::run`].
//!
//! # Determinism
//!
//! A seeded run is byte-identical for any fixed shard count, and
//! byte-identical to the serial run, because every observable effect of
//! a deferred redirect is pinned at *defer* time (which happens at the
//! exact position the serial loop would handle it):
//!
//! * **Queue order** — the eventual `ArriveAtHost` gets its tie-break
//!   sequence number reserved at defer time
//!   ([`radar_simcore::EventQueue::reserve_seq`]), so it sorts exactly
//!   where the serial loop's immediate `schedule` would have put it.
//! * **Pop safety** — the sequencer never pops an event that could sort
//!   after a still-uncommitted deferred arrival: each pending redirect
//!   carries a lower bound on its arrival key (defer time + the minimum
//!   propagation delay over the object's replicas, frozen for the
//!   window), and the queue head is only popped while its `(time, seq)`
//!   key is below the minimum pending bound.
//! * **Recorder order** — the decision event's flight-recorder sequence
//!   is reserved at defer time and the whole stream passes through an
//!   [`radar_obs::EventReorderBuffer`], so observers see sequence order
//!   regardless of commit timing.
//! * **Queue depth** — emitted `queue_depth` values use
//!   [`Simulation::depth`], which counts the arrivals still owed by
//!   in-flight redirects and is therefore invariant to commit timing.
//! * **Decisions themselves** — Fig. 2 state is per-object, objects are
//!   partitioned, and each shard processes its items in defer order =
//!   serial pop order restricted to its objects, so every request count
//!   and every choice evolves exactly as in the serial run.
//!
//! Epoch barriers (placement runs, provider updates, declare-dead
//! sweeps, fault transitions) flush all pending work, recall every
//! shard's state, and run the handler on the reunited directory; the
//! window is then re-split (or the loop drops to serial mode if the
//! fault broke the invariants).

use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use radar_core::{shard_ranges, ChoiceExplanation, ObjectId, RedirectorShard};
use radar_obs::{
    BarrierCause, LaneProfile, Log2Histogram, ShardProfile, SharedShardProfile, SpanKind,
};
use radar_simcore::{SimDuration, SimTime};
use radar_simnet::{NodeId, RoutingView};

use crate::lifecycle::fill_decision;
use crate::platform::{Event, Simulation};
use crate::redirect::EngineShard;
use crate::report::RunReport;

/// Read-only network facts a worker needs to fill candidate-cache slots:
/// the full hop-distance matrix plus the generation counters that key
/// cache freshness. Captured once per parallel window (distances cannot
/// change inside one — the window ends at any fault transition).
pub(crate) struct NetSnapshot {
    num_nodes: usize,
    /// Row-major `num_nodes × num_nodes` hop distances.
    distances: Vec<u32>,
    routing_gen: u64,
    fault_gen: u32,
}

impl NetSnapshot {
    pub(crate) fn from_view(view: &RoutingView, fault_gen: u32) -> Self {
        let n = view.topology().len();
        let mut distances = vec![0u32; n * n];
        for a in 0..n {
            for b in 0..n {
                distances[a * n + b] = view.distance(NodeId::new(a as u16), NodeId::new(b as u16));
            }
        }
        NetSnapshot {
            num_nodes: n,
            distances,
            routing_gen: view.generation(),
            fault_gen,
        }
    }

    /// Hop distance between two nodes, as the routing view reported at
    /// capture time.
    pub(crate) fn distance(&self, from: NodeId, to: NodeId) -> u32 {
        self.distances[from.index() * self.num_nodes + to.index()]
    }

    pub(crate) fn routing_gen(&self) -> u64 {
        self.routing_gen
    }

    pub(crate) fn fault_gen(&self) -> u32 {
        self.fault_gen
    }
}

/// One deferred redirect, sent to the shard owning its object.
struct WorkItem {
    /// Monotonic defer counter; outcomes are matched back by id.
    id: u64,
    object: ObjectId,
    gateway: NodeId,
    /// Capture the Fig. 2 explanation for the flight recorder.
    explain: bool,
}

/// A shard's answer to one [`WorkItem`].
struct WorkOutcome {
    host: NodeId,
    explanation: Option<Box<ChoiceExplanation>>,
}

/// Everything a worker owns between a split and the next barrier.
struct ShardState {
    redirector: RedirectorShard,
    engine: EngineShard,
}

enum ToShard {
    /// Install this window's state (sent at each split).
    State(Box<ShardState>, Arc<NetSnapshot>),
    /// Decide one redirect.
    Item(WorkItem),
    /// Return the state (sent at each barrier).
    Collect,
}

enum FromShard {
    Outcome {
        id: u64,
        outcome: WorkOutcome,
    },
    State {
        shard: usize,
        state: Box<ShardState>,
        /// Cumulative worker telemetry, piggybacked on every collect
        /// when profiling is on (`None` otherwise).
        lane: Option<LaneProfile>,
    },
}

/// Cursor-based span accounting: the cursor marks when the current
/// span began; every transition charges `now - cursor` to exactly one
/// [`SpanKind`] and advances the cursor. One `Instant::now()` per
/// transition, no unattributed gaps.
struct SpanClock {
    cursor: Instant,
}

impl SpanClock {
    fn new() -> Self {
        Self {
            cursor: Instant::now(),
        }
    }

    fn charge(&mut self, lane: &mut LaneProfile, kind: SpanKind) {
        let now = Instant::now();
        // duration_since saturates to zero on a non-monotonic step.
        lane.add_span(kind, now.duration_since(self.cursor).as_nanos() as u64);
        self.cursor = now;
    }
}

/// A worker thread's profiling state (engaged by `--profile`).
struct WorkerProf {
    clock: SpanClock,
    lane: LaneProfile,
}

/// The sequencer's profiling state: its own lane, the latest cumulative
/// lane snapshot from each worker, the sequencer-side histograms, and
/// the barrier counters.
struct SeqProf {
    clock: SpanClock,
    /// Run start, for wall-clock coverage.
    started: Instant,
    lane: LaneProfile,
    worker_lanes: Vec<LaneProfile>,
    handoff_ns: Log2Histogram,
    batch_items: Log2Histogram,
    barriers: [u64; BarrierCause::COUNT],
    /// What a blocking front-commit wait counts as: `ChannelWait` in
    /// steady state, `BarrierDrain` while a barrier flushes pending.
    wait_kind: SpanKind,
}

impl SeqProf {
    fn new(shards: usize) -> Self {
        SeqProf {
            clock: SpanClock::new(),
            started: Instant::now(),
            lane: LaneProfile::default(),
            worker_lanes: vec![LaneProfile::default(); shards],
            handoff_ns: Log2Histogram::new(),
            batch_items: Log2Histogram::new(),
            barriers: [0; BarrierCause::COUNT],
            wait_kind: SpanKind::ChannelWait,
        }
    }

    /// Builds the profile as of now (published live at barriers; the
    /// final call becomes [`crate::RunReport::shard_profile`]).
    fn assemble(&self, shards: usize) -> ShardProfile {
        ShardProfile {
            shards,
            wall_ns: self.started.elapsed().as_nanos() as u64,
            sequencer: self.lane,
            workers: self.worker_lanes.clone(),
            handoff_ns: self.handoff_ns,
            batch_items: self.batch_items,
            barriers: self.barriers,
        }
    }
}

/// A deferred redirect awaiting its outcome, with every serial-order
/// fact pinned at defer time.
struct PendingSlot {
    id: u64,
    object: ObjectId,
    gateway: NodeId,
    rnode: NodeId,
    /// Time the redirect event fired.
    t: SimTime,
    /// Original request arrival time.
    t0: SimTime,
    /// Causal parent (the arrival's recorder sequence).
    cause: u64,
    /// Queue depth snapshot for the decision event.
    qd: u32,
    /// Reserved tie-break for the eventual `ArriveAtHost`.
    queue_seq: u64,
    /// Reserved flight-recorder sequence for the decision (0 untraced).
    rec_seq: u64,
    /// Wall-clock defer instant, set only when profiling: the hand-off
    /// latency histogram records defer → outcome-received per decision.
    deferred_at: Option<Instant>,
    outcome: Option<WorkOutcome>,
}

/// Spin briefly before blocking: the round trip to a worker is far
/// shorter than a thread park/unpark, so a bounded spin keeps the
/// common case off the scheduler.
const RECV_SPIN_ITERS: u32 = 1000;

fn recv_spin<T>(rx: &Receiver<T>) -> Option<T> {
    for _ in 0..RECV_SPIN_ITERS {
        match rx.try_recv() {
            Ok(msg) => return Some(msg),
            Err(std::sync::mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

fn worker_loop(shard_idx: usize, rx: Receiver<ToShard>, tx: Sender<FromShard>, profiled: bool) {
    let mut state: Option<(Box<ShardState>, Arc<NetSnapshot>)> = None;
    // Worker span accounting: time waiting on the channel is `Idle`,
    // deciding an item is `Busy`, installing/returning window state is
    // `Reunite`. The lane is cumulative for the whole run and a copy
    // rides back on every `Collect`, so the sequencer always holds a
    // complete snapshot after a barrier.
    let mut prof = profiled.then(|| WorkerProf {
        clock: SpanClock::new(),
        lane: LaneProfile::default(),
    });
    while let Some(msg) = recv_spin(&rx) {
        if let Some(p) = &mut prof {
            p.clock.charge(&mut p.lane, SpanKind::Idle);
        }
        match msg {
            ToShard::State(s, net) => {
                state = Some((s, net));
                if let Some(p) = &mut prof {
                    p.clock.charge(&mut p.lane, SpanKind::Reunite);
                }
            }
            ToShard::Item(item) => {
                let (s, net) = state.as_mut().expect("state installed before items");
                let mut explanation = item.explain.then(|| Box::new(ChoiceExplanation::default()));
                let host = s
                    .engine
                    .choose(
                        item.object,
                        item.gateway,
                        &mut s.redirector,
                        net,
                        explanation.as_deref_mut(),
                    )
                    .expect("a fault-free connected window always has a usable replica");
                // Send failure means the sequencer is gone (panic
                // unwinding); just exit quietly.
                if tx
                    .send(FromShard::Outcome {
                        id: item.id,
                        outcome: WorkOutcome { host, explanation },
                    })
                    .is_err()
                {
                    return;
                }
                if let Some(p) = &mut prof {
                    p.lane.items += 1;
                    p.clock.charge(&mut p.lane, SpanKind::Busy);
                }
            }
            ToShard::Collect => {
                let (mut s, _) = state.take().expect("state installed before collect");
                // Harvest the engine shard's cache tally before the
                // shard is sent back and absorbed, so it is counted
                // exactly once — on this worker's lane.
                let lane = prof.as_mut().map(|p| {
                    let (hits, misses) = s.engine.take_cache_stats();
                    p.lane.cache_hits += hits;
                    p.lane.cache_misses += misses;
                    p.clock.charge(&mut p.lane, SpanKind::Reunite);
                    p.lane
                });
                if tx
                    .send(FromShard::State {
                        shard: shard_idx,
                        state: s,
                        lane,
                    })
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// The sequencer-side runtime: worker handles, the pending FIFO, and the
/// arrival-key floor that guards pop order.
struct ShardRuntime {
    senders: Vec<Sender<ToShard>>,
    from_rx: Receiver<FromShard>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Object index → owning shard (contiguous ranges).
    shard_of: Vec<usize>,
    /// Deferred redirects in defer (= serial pop) order.
    pending: VecDeque<PendingSlot>,
    /// Min-heap of `(arrival-key lower bound in µs, queue_seq, id)` over
    /// pending items; entries for committed items are stale and removed
    /// lazily.
    floor: BinaryHeap<std::cmp::Reverse<(u64, u64, u64)>>,
    /// Per-object lower bound (µs) on redirector→replica propagation,
    /// rebuilt at each split while replica sets are frozen.
    bounds: Vec<u64>,
    next_item_id: u64,
    /// Whether shard state is currently out with the workers.
    split: bool,
    /// Sequencer-side telemetry, engaged by `--profile`.
    prof: Option<Box<SeqProf>>,
    /// Live snapshot handle for the dashboard, published at barriers.
    live: Option<SharedShardProfile>,
}

impl ShardRuntime {
    fn new(sim: &Simulation, shards: usize) -> Self {
        let profiled = sim.shard_profile_live.is_some();
        let num_objects = sim.scenario.num_objects as usize;
        let mut shard_of = vec![0usize; num_objects];
        for (s, &(start, end)) in shard_ranges(sim.scenario.num_objects, shards)
            .iter()
            .enumerate()
        {
            for slot in &mut shard_of[start as usize..end as usize] {
                *slot = s;
            }
        }
        let (from_tx, from_rx) = std::sync::mpsc::channel();
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for s in 0..shards {
            let (tx, rx) = std::sync::mpsc::channel();
            senders.push(tx);
            let from = from_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("radar-shard-{s}"))
                .spawn(move || worker_loop(s, rx, from, profiled))
                .expect("spawn shard worker");
            workers.push(handle);
        }
        ShardRuntime {
            senders,
            from_rx,
            workers,
            shard_of,
            pending: VecDeque::new(),
            floor: BinaryHeap::new(),
            bounds: vec![0; num_objects],
            next_item_id: 0,
            split: false,
            prof: profiled.then(|| Box::new(SeqProf::new(shards))),
            live: sim.shard_profile_live.clone(),
        }
    }

    /// Recomputes each object's arrival-key lower bound: the minimum
    /// propagation delay from its redirector to any replica. Valid for
    /// the whole window because replica sets only change at barriers.
    fn rebuild_bounds(&mut self, sim: &Simulation) {
        for (i, bound) in self.bounds.iter_mut().enumerate() {
            let object = ObjectId::new(i as u32);
            let rnode = sim.redirector_node_of(object);
            *bound = sim
                .redirector
                .replicas(object)
                .iter()
                .map(|r| {
                    let delay = sim
                        .scenario
                        .network
                        .propagation_time(sim.view.distance(rnode, r.host));
                    SimDuration::from_secs(delay).as_micros()
                })
                .min()
                .unwrap_or(u64::MAX);
        }
    }

    /// Splits directory + engine state across the workers for a new
    /// parallel window.
    fn split(&mut self, sim: &mut Simulation) {
        debug_assert!(!self.split);
        if let Some(p) = &mut self.prof {
            // Everything since the last transition was handler work.
            p.clock.charge(&mut p.lane, SpanKind::Busy);
        }
        self.rebuild_bounds(sim);
        let net = Arc::new(NetSnapshot::from_view(&sim.view, sim.fault_gen));
        let dirs = sim.redirector.split_shards(self.senders.len());
        let engines = sim.redirect.split_shards(self.senders.len());
        for ((sender, redirector), engine) in self.senders.iter().zip(dirs).zip(engines) {
            sender
                .send(ToShard::State(
                    Box::new(ShardState { redirector, engine }),
                    Arc::clone(&net),
                ))
                .expect("worker alive");
        }
        self.split = true;
        if let Some(p) = &mut self.prof {
            p.clock.charge(&mut p.lane, SpanKind::Reunite);
        }
    }

    /// Hands one redirect to its owning shard, pinning every
    /// serial-order fact (metrics increment, queue-depth snapshot,
    /// queue and recorder sequence numbers) at this point in the event
    /// order.
    fn defer(
        &mut self,
        sim: &mut Simulation,
        t: SimTime,
        object: ObjectId,
        gateway: NodeId,
        t0: SimTime,
        cause: u64,
    ) {
        let rnode = sim.redirector_node_of(object);
        sim.metrics.redirector_requests[rnode.index()] += 1;
        let qd = sim.depth();
        let rec_seq = if sim.events.tracing {
            sim.events.reserve_seq()
        } else {
            0
        };
        let queue_seq = sim.queue.reserve_seq();
        let id = self.next_item_id;
        self.next_item_id += 1;
        let key = t.as_micros().saturating_add(self.bounds[object.index()]);
        self.floor.push(std::cmp::Reverse((key, queue_seq, id)));
        let deferred_at = self.prof.is_some().then(Instant::now);
        self.pending.push_back(PendingSlot {
            id,
            object,
            gateway,
            rnode,
            t,
            t0,
            cause,
            qd,
            queue_seq,
            rec_seq,
            deferred_at,
            outcome: None,
        });
        sim.pending_push_estimate += 1;
        self.senders[self.shard_of[object.index()]]
            .send(ToShard::Item(WorkItem {
                id,
                object,
                gateway,
                explain: sim.events.tracing,
            }))
            .expect("worker alive");
    }

    /// The smallest `(µs, seq)` key any pending arrival could be
    /// scheduled under, or `None` with nothing pending. The queue head
    /// may be popped only while its key is strictly below this floor.
    fn floor_key(&mut self) -> Option<(u64, u64)> {
        let front_id = self.pending.front()?.id;
        while let Some(&std::cmp::Reverse((key, seq, id))) = self.floor.peek() {
            if id < front_id {
                self.floor.pop();
            } else {
                return Some((key, seq));
            }
        }
        None
    }

    fn store(&mut self, msg: FromShard) {
        match msg {
            FromShard::Outcome { id, outcome } => {
                let front_id = self.pending.front().expect("outcome for a pending item").id;
                let idx = (id - front_id) as usize;
                self.pending[idx].outcome = Some(outcome);
                if let Some(p) = &mut self.prof {
                    // Hand-off latency = defer → outcome received back
                    // on the sequencer, the full per-decision round
                    // trip through the worker.
                    if let Some(at) = self.pending[idx].deferred_at.take() {
                        p.handoff_ns.record(at.elapsed().as_nanos() as u64);
                    }
                }
            }
            FromShard::State { .. } => unreachable!("states are only collected at barriers"),
        }
    }

    /// Absorbs any outcomes already delivered and commits the pending
    /// front as far as it goes, without blocking.
    fn drain_ready(&mut self, sim: &mut Simulation) {
        let mut batch = 0u64;
        while let Ok(msg) = self.from_rx.try_recv() {
            self.store(msg);
            batch += 1;
        }
        if batch > 0 {
            if let Some(p) = &mut self.prof {
                p.batch_items.record(batch);
            }
        }
        while self.pending.front().is_some_and(|s| s.outcome.is_some()) {
            let slot = self.pending.pop_front().expect("front exists");
            commit_slot(sim, slot);
        }
    }

    /// Blocks until the pending front's outcome arrives, then commits it.
    fn commit_front_blocking(&mut self, sim: &mut Simulation) {
        if let Some(p) = &mut self.prof {
            // Everything since the last transition was sequencer work.
            p.clock.charge(&mut p.lane, SpanKind::Busy);
        }
        while self.pending.front().is_some_and(|s| s.outcome.is_none()) {
            let msg = recv_spin(&self.from_rx).expect("workers alive while items pending");
            self.store(msg);
        }
        if let Some(p) = &mut self.prof {
            // Attributed to the channel in steady state, to the barrier
            // while a flush is draining the pending FIFO.
            let kind = p.wait_kind;
            p.clock.charge(&mut p.lane, kind);
        }
        if let Some(slot) = self.pending.pop_front() {
            commit_slot(sim, slot);
        }
    }

    /// Epoch barrier: flush every pending redirect, recall every shard's
    /// state, and reunite it with the parent directory and engine. On
    /// return the sequencer may run any handler on fully-consistent
    /// state.
    ///
    /// `cause` names the event class that forced the barrier for the
    /// profile's barrier counters; the final end-of-run barrier passes
    /// `None`.
    fn barrier(&mut self, sim: &mut Simulation, cause: Option<BarrierCause>) {
        if !self.split {
            return;
        }
        if let Some(p) = &mut self.prof {
            if let Some(c) = cause {
                p.barriers[c as usize] += 1;
            }
            p.clock.charge(&mut p.lane, SpanKind::Busy);
            // Front-commit waits inside the flush drain the barrier,
            // not the steady-state channel.
            p.wait_kind = SpanKind::BarrierDrain;
        }
        while !self.pending.is_empty() {
            self.commit_front_blocking(sim);
        }
        self.floor.clear();
        for sender in &self.senders {
            sender.send(ToShard::Collect).expect("worker alive");
        }
        let mut states: Vec<Option<Box<ShardState>>> =
            (0..self.senders.len()).map(|_| None).collect();
        let mut collected = 0;
        while collected < states.len() {
            match recv_spin(&self.from_rx).expect("workers alive during collect") {
                FromShard::State { shard, state, lane } => {
                    debug_assert!(states[shard].is_none());
                    states[shard] = Some(state);
                    if let (Some(p), Some(lane)) = (&mut self.prof, lane) {
                        // Cumulative snapshot; newer collects replace
                        // older ones outright.
                        p.worker_lanes[shard] = lane;
                    }
                    collected += 1;
                }
                FromShard::Outcome { .. } => {
                    unreachable!("all outcomes were committed before collect")
                }
            }
        }
        if let Some(p) = &mut self.prof {
            p.clock.charge(&mut p.lane, SpanKind::BarrierDrain);
            p.wait_kind = SpanKind::ChannelWait;
        }
        let mut dirs = Vec::with_capacity(states.len());
        let mut engines = Vec::with_capacity(states.len());
        for state in states {
            let state = state.expect("collected above");
            dirs.push(state.redirector);
            engines.push(state.engine);
        }
        sim.redirector.absorb_shards(dirs);
        sim.redirect.absorb_shards(engines);
        self.split = false;
        if let Some(p) = &mut self.prof {
            p.clock.charge(&mut p.lane, SpanKind::Reunite);
            if let Some(live) = &self.live {
                live.publish(p.assemble(self.senders.len()));
            }
        }
        debug_assert!(
            sim.events.reorder_drained(),
            "reserved recorder sequences must be emitted by the barrier"
        );
    }

    fn shutdown(mut self) {
        debug_assert!(!self.split && self.pending.is_empty());
        self.senders.clear();
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                panic!("a shard worker panicked");
            }
        }
    }
}

/// Commits one answered redirect: emits the decision under its reserved
/// recorder sequence and schedules the `ArriveAtHost` under its reserved
/// queue sequence — reproducing exactly what the serial handler's tail
/// would have done at defer time.
fn commit_slot(sim: &mut Simulation, slot: PendingSlot) {
    sim.pending_push_estimate -= 1;
    let outcome = slot.outcome.expect("committed with an outcome");
    let host = outcome.host;
    let decision = if sim.events.tracing {
        let constant = sim.scenario.params.distribution_constant;
        sim.events.emit_reserved_decision(
            slot.rec_seq,
            slot.t.as_secs(),
            slot.qd,
            slot.cause,
            |d| {
                fill_decision(
                    d,
                    slot.object,
                    slot.gateway,
                    host,
                    outcome.explanation.as_deref(),
                    false,
                    constant,
                );
            },
        );
        slot.rec_seq
    } else {
        0
    };
    let delay = sim.propagation(slot.rnode, host);
    sim.queue.schedule_reserved(
        slot.t + SimDuration::from_secs(delay),
        slot.queue_seq,
        Event::ArriveAtHost {
            object: slot.object,
            gateway: slot.gateway,
            host,
            t0: slot.t0,
            cause: decision,
        },
    );
}

impl Simulation {
    /// `true` while the invariants of a parallel window hold: no active
    /// fault and a fully connected topology, so every replica of every
    /// object is usable from everywhere.
    fn parallel_window_ok(&self) -> bool {
        self.fault_state.all_clear() && self.topology_connected()
    }

    /// `true` when every node is reachable from node 0 (which, on an
    /// undirected topology, makes every pair mutually reachable).
    fn topology_connected(&self) -> bool {
        let zero = NodeId::new(0);
        (1..self.hosts.len()).all(|i| !self.view.path(zero, NodeId::new(i as u16)).is_empty())
    }

    /// Runs the simulation to completion on `shards` worker threads and
    /// returns the finalized report.
    ///
    /// The run is deterministic for any fixed shard count, and its
    /// observable outputs — the flight-recorder stream, the metrics, the
    /// final report — are byte-identical to [`run`](Simulation::run).
    /// `--shards 1`, selection policies without candidate caching, and
    /// partially-run simulations delegate to the serial loop outright.
    /// See the module docs of `shard.rs` for the design.
    ///
    /// Event-loop profiling ([`Simulation::enable_loop_profile`]) covers
    /// every event the sequencer handles itself; redirects decided on a
    /// worker shard do not appear as loop-profile rows — their cost is
    /// captured by the shard profile
    /// ([`Simulation::enable_shard_profile`]) instead. Observer
    /// callbacks other than the typed event feed (`on_request_served`,
    /// load samples, …) are delivered when their handler runs, which in
    /// parallel windows may interleave differently with the event feed
    /// than in a serial run; the callbacks themselves, their order, and
    /// all aggregates are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn run_sharded(mut self, shards: usize) -> RunReport {
        assert!(shards >= 1, "at least one shard is required");
        // The serial loop IS the single-shard loop; it is also the only
        // correct loop for policies that bypass the candidate cache and
        // for simulations that already emitted events serially.
        if shards == 1 || !self.selection.supports_candidate_cache() || self.events.next_seq != 0 {
            self.run_until(self.scenario.duration);
            return self.finish();
        }
        self.events.enable_reorder();
        if !self.started {
            self.bootstrap();
            self.started = true;
        }
        let end = SimTime::from_secs(self.scenario.duration);
        let mut runtime = ShardRuntime::new(&self, shards);
        let mut parallel = self.parallel_window_ok();
        if parallel {
            runtime.split(&mut self);
        }
        loop {
            if parallel {
                runtime.drain_ready(&mut self);
                let Some((head_t, head_seq)) = self.queue.peek_key() else {
                    if runtime.pending.is_empty() {
                        break;
                    }
                    runtime.commit_front_blocking(&mut self);
                    continue;
                };
                if head_t > end {
                    if runtime.pending.is_empty() {
                        break;
                    }
                    runtime.commit_front_blocking(&mut self);
                    continue;
                }
                if let Some(floor) = runtime.floor_key() {
                    if (head_t.as_micros(), head_seq) >= floor {
                        // The queue head might sort after a pending
                        // arrival; resolve the front before popping.
                        runtime.commit_front_blocking(&mut self);
                        continue;
                    }
                }
                let (t, ev) = self.queue.pop().expect("peeked event exists");
                if let Some(p) = &mut runtime.prof {
                    p.lane.items += 1;
                }
                match ev {
                    Event::Redirect {
                        object,
                        gateway,
                        t0,
                        cause,
                    } => runtime.defer(&mut self, t, object, gateway, t0, cause),
                    ev @ (Event::Placement { .. }
                    | Event::ProviderUpdate
                    | Event::UpdateDeliver { .. }
                    | Event::DeclareDead { .. }) => {
                        let cause = match &ev {
                            Event::Placement { .. } => BarrierCause::Placement,
                            Event::ProviderUpdate | Event::UpdateDeliver { .. } => {
                                BarrierCause::ProviderUpdate
                            }
                            _ => BarrierCause::DeclareDead,
                        };
                        runtime.barrier(&mut self, Some(cause));
                        self.dispatch(t, ev);
                        runtime.split(&mut self);
                    }
                    Event::Fault { .. } => {
                        runtime.barrier(&mut self, Some(BarrierCause::Fault));
                        self.dispatch(t, ev);
                        parallel = self.parallel_window_ok();
                        if parallel {
                            runtime.split(&mut self);
                        }
                    }
                    other => self.dispatch(t, other),
                }
            } else {
                let Some(next) = self.queue.peek_time() else {
                    break;
                };
                if next > end {
                    break;
                }
                let (t, ev) = self.queue.pop().expect("peeked event exists");
                if let Some(p) = &mut runtime.prof {
                    p.lane.items += 1;
                }
                let was_fault = matches!(ev, Event::Fault { .. });
                self.dispatch(t, ev);
                if was_fault {
                    parallel = self.parallel_window_ok();
                    if parallel {
                        runtime.split(&mut self);
                    }
                }
            }
        }
        if parallel {
            runtime.barrier(&mut self, None);
        }
        if let Some(mut p) = runtime.prof.take() {
            // Close the final span and claim serial-window cache traffic
            // (the parent engine's own tally) for the sequencer lane.
            p.clock.charge(&mut p.lane, SpanKind::Busy);
            let (hits, misses) = self.redirect.take_cache_stats();
            p.lane.cache_hits += hits;
            p.lane.cache_misses += misses;
            let profile = p.assemble(shards);
            if let Some(live) = &runtime.live {
                live.publish(profile.clone());
            }
            self.shard_profile = Some(profile);
        }
        runtime.shutdown();
        debug_assert!(self.events.reorder_drained());
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_simnet::builders;

    #[test]
    fn snapshot_mirrors_the_routing_view() {
        let view = RoutingView::new(builders::uunet());
        let net = NetSnapshot::from_view(&view, 7);
        let n = view.topology().len();
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId::new(a as u16), NodeId::new(b as u16));
                assert_eq!(net.distance(a, b), view.distance(a, b));
            }
        }
        assert_eq!(net.routing_gen(), view.generation());
        assert_eq!(net.fault_gen(), 7);
    }
}
