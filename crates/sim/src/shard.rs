//! The sharded parallel event loop with deterministic epoch barriers.
//!
//! [`Simulation::run_sharded`] splits the object space across worker
//! threads by the same hash partition the paper uses for redirectors
//! (§2 — contiguous object-id ranges, [`radar_core::shard_ranges`]).
//! Each worker owns its slice of the directory
//! ([`radar_core::RedirectorShard`]) and of the redirect engine's
//! candidate cache ([`crate::redirect::EngineShard`]); the main thread
//! keeps sequencing the event queue and handles everything except the
//! hot redirect decision, which it *defers* to the owning shard.
//!
//! # The two modes
//!
//! The loop runs in **parallel mode** only while the platform is inside
//! an all-clear window: no fault of any kind active
//! ([`FaultState`](crate::faults) `all_clear`) and the topology fully
//! connected. Inside such a window every replica host is up and every
//! route intact, so the redirect usability filter passes every replica:
//! a decision can never come up empty, the primary-fallback path can
//! never run, and replica sets can only change at events the loop treats
//! as barriers. Outside the window — from the fault transition that
//! breaks it to the one that restores it — the loop falls back to the
//! **serial** handler for every event, which is trivially equivalent to
//! [`Simulation::run`].
//!
//! # Batched hand-off
//!
//! The unit of deferral is a *run*: a maximal stretch of consecutive
//! `Redirect` pops with no other handler in between
//! ([`ShardRuntime::defer_run`]). The whole run is deferred in one go —
//! its queue and flight-recorder sequence numbers reserved as one
//! contiguous block ([`radar_simcore::EventQueue::reserve_seqs`]),
//! its items appended to a per-shard accumulating batch. Batches
//! persist *across* runs: most runs are cut short by an unrelated
//! event (an arrival, a transmission) sitting between two redirects,
//! and the sequencer dispatches those itself while deferred work keeps
//! piling up, so one [`ToShard::Batch`] typically carries many runs'
//! worth of items. A batch ships when it reaches
//! [`BATCH_FLUSH_TARGET`] items, or immediately when a commit or
//! barrier needs its answers; each worker drains a whole batch before
//! replying with a single [`FromShard::Outcomes`]. Transport is a pair
//! of bounded lock-free SPSC rings per worker
//! ([`radar_simcore::spsc`]); both sides wait with the adaptive
//! spin-then-park [`radar_simcore::spsc::Backoff`], so an idle lane
//! parks instead of burning a core.
//!
//! # Determinism
//!
//! A seeded run is byte-identical for any fixed shard count (and any
//! batch cap), and byte-identical to the serial run, because every
//! observable effect of a deferred redirect is pinned at *defer* time
//! (which happens at the exact position the serial loop would handle
//! it):
//!
//! * **Queue order** — the eventual `ArriveAtHost` gets its tie-break
//!   sequence number reserved at defer time, so it sorts exactly where
//!   the serial loop's immediate `schedule` would have put it. Block
//!   reservation for a run is exact: during an uninterrupted run no
//!   handler executes, so nothing else can claim a sequence number
//!   mid-run, and the per-item reservations the serial loop would make
//!   are precisely consecutive.
//! * **Pop safety** — the sequencer never pops an event that could sort
//!   after a still-uncommitted deferred arrival. Each pending redirect
//!   carries a lower bound on its arrival key (defer time + the minimum
//!   propagation delay over the object's replicas, frozen for the
//!   window); the queue head is popped only while its `(time, seq)` key
//!   is below the minimum pending bound. Floor entries are materialized
//!   lazily — staged per run and folded into the floor heap only when
//!   the sequencer actually reaches an event that could conflict — and
//!   a run may extend through its *own* items' bounds up to equality,
//!   because everything already queued outsorts the run's yet-to-come
//!   arrivals on the sequence tie-break. That widens the dispatch
//!   horizon from one decision to whole runs.
//! * **Recorder order** — the decision event's flight-recorder sequence
//!   is reserved at defer time and the whole stream passes through an
//!   [`radar_obs::EventReorderBuffer`], so observers see sequence order
//!   regardless of commit timing.
//! * **Queue depth** — emitted `queue_depth` values use
//!   [`Simulation::depth`], which counts the arrivals still owed by
//!   in-flight redirects and is therefore invariant to commit timing.
//!   Within one run the serial value is constant (each pop shrinks the
//!   queue exactly as the previous item's owed arrival grows), so one
//!   snapshot at run start covers every item.
//! * **Decisions themselves** — Fig. 2 state is per-object, objects are
//!   partitioned, and each shard processes its items in defer order =
//!   serial pop order restricted to its objects (ring FIFO × in-batch
//!   order), so every request count and every choice evolves exactly as
//!   in the serial run.
//!
//! Epoch barriers (placement runs, provider updates, declare-dead
//! sweeps, fault transitions) flush all pending work, recall every
//! shard's state, and run the handler on the reunited directory; the
//! window is then re-split (or the loop drops to serial mode if the
//! fault broke the invariants).

use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use radar_core::{shard_ranges, ChoiceExplanation, ObjectId, RedirectorShard};
use radar_obs::{
    BarrierCause, LaneProfile, Log2Histogram, ShardProfile, SharedShardProfile, SpanKind,
};
use radar_simcore::{spsc, SimDuration, SimTime};
use radar_simnet::{NodeId, RoutingView};

use crate::lifecycle::fill_decision;
use crate::platform::{Event, Simulation};
use crate::redirect::EngineShard;
use crate::report::RunReport;

/// Read-only network facts a worker needs to fill candidate-cache slots:
/// the full hop-distance matrix plus the generation counters that key
/// cache freshness. Captured once per parallel window (distances cannot
/// change inside one — the window ends at any fault transition).
pub(crate) struct NetSnapshot {
    num_nodes: usize,
    /// Row-major `num_nodes × num_nodes` hop distances.
    distances: Vec<u32>,
    routing_gen: u64,
    fault_gen: u32,
}

impl NetSnapshot {
    pub(crate) fn from_view(view: &RoutingView, fault_gen: u32) -> Self {
        let n = view.topology().len();
        let mut distances = vec![0u32; n * n];
        for a in 0..n {
            for b in 0..n {
                distances[a * n + b] = view.distance(NodeId::new(a as u16), NodeId::new(b as u16));
            }
        }
        NetSnapshot {
            num_nodes: n,
            distances,
            routing_gen: view.generation(),
            fault_gen,
        }
    }

    /// Hop distance between two nodes, as the routing view reported at
    /// capture time.
    pub(crate) fn distance(&self, from: NodeId, to: NodeId) -> u32 {
        self.distances[from.index() * self.num_nodes + to.index()]
    }

    pub(crate) fn routing_gen(&self) -> u64 {
        self.routing_gen
    }

    pub(crate) fn fault_gen(&self) -> u32 {
        self.fault_gen
    }
}

/// One deferred redirect, batched to the shard owning its object.
struct WorkItem {
    /// Monotonic defer counter; outcomes are matched back by id.
    id: u64,
    object: ObjectId,
    gateway: NodeId,
    /// Capture the Fig. 2 explanation for the flight recorder.
    explain: bool,
}

/// A shard's answer to one [`WorkItem`].
struct WorkOutcome {
    /// Echo of the item's defer counter.
    id: u64,
    host: NodeId,
    explanation: Option<Box<ChoiceExplanation>>,
}

/// Everything a worker owns between a split and the next barrier.
struct ShardState {
    redirector: RedirectorShard,
    engine: EngineShard,
}

enum ToShard {
    /// Install this window's state (sent at each split).
    State(Box<ShardState>, Arc<NetSnapshot>),
    /// Decide a whole batch of redirects. The second vector is an empty
    /// reply buffer riding along so the worker answers without
    /// allocating; its capacity cycles sequencer → worker → sequencer.
    Batch(Vec<WorkItem>, Vec<WorkOutcome>),
    /// Return the state (sent at each barrier).
    Collect,
}

enum FromShard {
    /// Answers for one whole [`ToShard::Batch`], in batch order. The
    /// spent item vector rides back for recycling.
    Outcomes(Vec<WorkOutcome>, Vec<WorkItem>),
    State {
        shard: usize,
        state: Box<ShardState>,
        /// Cumulative worker telemetry, piggybacked on every collect
        /// when profiling is on (`None` otherwise).
        lane: Option<LaneProfile>,
    },
}

/// Capacity of each SPSC ring (messages, not items — a full batch is
/// one slot). Rounded up to a power of two by the ring itself.
const RING_CAPACITY: usize = 64;

/// Items a shard's accumulating batch must reach before a run end
/// ships it. Batches persist *across* runs — most runs are cut short
/// by an unrelated event (an arrival or transmission) sitting between
/// two redirects, and the sequencer can dispatch those itself while
/// deferred work keeps accumulating — so this is the lever that turns
/// many short runs into one hand-off message. Commits and barriers
/// flush unconditionally, so a partial batch never stalls progress.
const BATCH_FLUSH_TARGET: usize = 16;

/// Cursor-based span accounting: the cursor marks when the current
/// span began; every transition charges `now - cursor` to exactly one
/// [`SpanKind`] and advances the cursor. One `Instant::now()` per
/// transition, no unattributed gaps.
struct SpanClock {
    cursor: Instant,
}

impl SpanClock {
    fn new() -> Self {
        Self {
            cursor: Instant::now(),
        }
    }

    fn charge(&mut self, lane: &mut LaneProfile, kind: SpanKind) {
        let now = Instant::now();
        // duration_since saturates to zero on a non-monotonic step.
        lane.add_span(kind, now.duration_since(self.cursor).as_nanos() as u64);
        self.cursor = now;
    }
}

/// A worker thread's profiling state (engaged by `--profile`).
struct WorkerProf {
    clock: SpanClock,
    lane: LaneProfile,
}

/// The sequencer's profiling state: its own lane, the latest cumulative
/// lane snapshot from each worker, the sequencer-side histograms, and
/// the barrier counters.
struct SeqProf {
    clock: SpanClock,
    /// Run start, for wall-clock coverage.
    started: Instant,
    lane: LaneProfile,
    worker_lanes: Vec<LaneProfile>,
    handoff_ns: Log2Histogram,
    batch_items: Log2Histogram,
    barriers: [u64; BarrierCause::COUNT],
    /// What a blocking front-commit wait counts as: `ChannelWait` in
    /// steady state, `BarrierDrain` while a barrier flushes pending.
    wait_kind: SpanKind,
}

impl SeqProf {
    fn new(shards: usize) -> Self {
        SeqProf {
            clock: SpanClock::new(),
            started: Instant::now(),
            lane: LaneProfile::default(),
            worker_lanes: vec![LaneProfile::default(); shards],
            handoff_ns: Log2Histogram::new(),
            batch_items: Log2Histogram::new(),
            barriers: [0; BarrierCause::COUNT],
            wait_kind: SpanKind::ChannelWait,
        }
    }

    /// Builds the profile as of now (published live at barriers; the
    /// final call becomes [`crate::RunReport::shard_profile`]).
    fn assemble(&self, shards: usize) -> ShardProfile {
        ShardProfile {
            shards,
            wall_ns: self.started.elapsed().as_nanos() as u64,
            sequencer: self.lane,
            workers: self.worker_lanes.clone(),
            handoff_ns: self.handoff_ns,
            batch_items: self.batch_items,
            barriers: self.barriers,
        }
    }
}

/// A deferred redirect awaiting its outcome, with every serial-order
/// fact pinned at defer time.
struct PendingSlot {
    id: u64,
    object: ObjectId,
    gateway: NodeId,
    rnode: NodeId,
    /// Time the redirect event fired.
    t: SimTime,
    /// Original request arrival time.
    t0: SimTime,
    /// Causal parent (the arrival's recorder sequence).
    cause: u64,
    /// Queue depth snapshot for the decision event.
    qd: u32,
    /// Reserved tie-break for the eventual `ArriveAtHost` (assigned in
    /// one contiguous block when the item's run ends).
    queue_seq: u64,
    /// Reserved flight-recorder sequence for the decision (0 untraced).
    rec_seq: u64,
    /// Wall-clock defer instant, set only when profiling: the hand-off
    /// latency histogram records defer → outcome-received per decision.
    deferred_at: Option<Instant>,
    outcome: Option<WorkOutcome>,
}

/// Sends one message up to the sequencer, yielding while the ring is
/// full. Returns `false` when the sequencer is gone (panic unwinding) —
/// the worker should just exit quietly.
fn send_from(tx: &mut spsc::Sender<FromShard>, mut msg: FromShard) -> bool {
    loop {
        match tx.try_send(msg) {
            Ok(()) => return true,
            Err(back) => {
                if tx.is_closed() {
                    return false;
                }
                msg = back;
                std::thread::yield_now();
            }
        }
    }
}

fn worker_loop(
    shard_idx: usize,
    mut rx: spsc::Receiver<ToShard>,
    mut tx: spsc::Sender<FromShard>,
    profiled: bool,
) {
    let mut state: Option<(Box<ShardState>, Arc<NetSnapshot>)> = None;
    // Worker span accounting: time waiting on the ring is `Idle`,
    // deciding a batch is `Busy`, installing/returning window state is
    // `Reunite`. The lane is cumulative for the whole run and a copy
    // rides back on every `Collect`, so the sequencer always holds a
    // complete snapshot after a barrier.
    let mut prof = profiled.then(|| WorkerProf {
        clock: SpanClock::new(),
        lane: LaneProfile::default(),
    });
    // Adaptive wait: spin briefly when batches are streaming, park on
    // the ring's doorbell otherwise — an idle lane (and every lane
    // during a serial window) sleeps instead of pegging a core.
    let mut backoff = spsc::Backoff::new();
    while let Some(msg) = rx.recv(&mut backoff) {
        if let Some(p) = &mut prof {
            p.clock.charge(&mut p.lane, SpanKind::Idle);
        }
        match msg {
            ToShard::State(s, net) => {
                state = Some((s, net));
                if let Some(p) = &mut prof {
                    p.clock.charge(&mut p.lane, SpanKind::Reunite);
                }
            }
            ToShard::Batch(mut items, mut reply) => {
                let (s, net) = state.as_mut().expect("state installed before items");
                debug_assert!(reply.is_empty());
                for item in items.drain(..) {
                    let mut explanation =
                        item.explain.then(|| Box::new(ChoiceExplanation::default()));
                    let host = s
                        .engine
                        .choose(
                            item.object,
                            item.gateway,
                            &mut s.redirector,
                            net,
                            explanation.as_deref_mut(),
                        )
                        .expect("a fault-free connected window always has a usable replica");
                    reply.push(WorkOutcome {
                        id: item.id,
                        host,
                        explanation,
                    });
                }
                let decided = reply.len() as u64;
                // The drained item vector rides back for recycling.
                if !send_from(&mut tx, FromShard::Outcomes(reply, items)) {
                    return;
                }
                if let Some(p) = &mut prof {
                    p.lane.items += decided;
                    p.clock.charge(&mut p.lane, SpanKind::Busy);
                }
            }
            ToShard::Collect => {
                let (mut s, _) = state.take().expect("state installed before collect");
                // Harvest the engine shard's cache tally before the
                // shard is sent back and absorbed, so it is counted
                // exactly once — on this worker's lane.
                let lane = prof.as_mut().map(|p| {
                    let (hits, misses) = s.engine.take_cache_stats();
                    p.lane.cache_hits += hits;
                    p.lane.cache_misses += misses;
                    p.clock.charge(&mut p.lane, SpanKind::Reunite);
                    p.lane
                });
                if !send_from(
                    &mut tx,
                    FromShard::State {
                        shard: shard_idx,
                        state: s,
                        lane,
                    },
                ) {
                    return;
                }
            }
        }
    }
}

/// The sequencer-side runtime: worker ring handles, the pending FIFO,
/// and the arrival-key floor that guards pop order.
struct ShardRuntime {
    to_workers: Vec<spsc::Sender<ToShard>>,
    from_rx: Vec<spsc::Receiver<FromShard>>,
    /// One doorbell shared by every worker→sequencer ring, so the
    /// sequencer parks on all reply lanes at once.
    seq_bell: Arc<spsc::Doorbell>,
    /// The sequencer's adaptive spin-then-park wait state.
    seq_backoff: spsc::Backoff,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Object index → owning shard (contiguous ranges).
    shard_of: Vec<usize>,
    /// Deferred redirects in defer (= serial pop) order.
    pending: VecDeque<PendingSlot>,
    /// Min-heap of `(arrival-key lower bound in µs, queue_seq, id)` over
    /// pending items; entries for committed items are stale and removed
    /// lazily.
    floor: BinaryHeap<std::cmp::Reverse<(u64, u64, u64)>>,
    /// Floor entries for the latest run(s), not yet folded into the
    /// heap. Folded — and committed items dropped — only when the
    /// sequencer reaches an event that could actually conflict
    /// ([`floor_key`](Self::floor_key)), so items that commit fast
    /// never touch the heap at all.
    floor_staging: Vec<(u64, u64, u64)>,
    /// Per-object lower bound (µs) on redirector→replica propagation.
    bounds: Vec<u64>,
    /// Membership version each bound was computed at: bounds are
    /// refreshed at a split only for objects whose replica set (or the
    /// routing) actually changed since the last window.
    bound_versions: Vec<u64>,
    /// Routing generation the bounds are valid for.
    bound_routing_gen: Option<u64>,
    /// Per-shard batch under construction during a defer run.
    accum: Vec<Vec<WorkItem>>,
    /// Spent item vectors riding back from workers, reused for the next
    /// batches so steady-state hand-off allocates nothing.
    item_pool: Vec<Vec<WorkItem>>,
    /// Drained reply vectors, sent back out with the next batches.
    reply_pool: Vec<Vec<WorkOutcome>>,
    next_item_id: u64,
    /// Whether shard state is currently out with the workers.
    split: bool,
    /// Sequencer-side telemetry, engaged by `--profile`.
    prof: Option<Box<SeqProf>>,
    /// Live snapshot handle for the dashboard, published at barriers.
    live: Option<SharedShardProfile>,
}

impl ShardRuntime {
    fn new(sim: &Simulation, shards: usize) -> Self {
        let profiled = sim.shard_profile_live.is_some();
        let num_objects = sim.scenario.num_objects as usize;
        let mut shard_of = vec![0usize; num_objects];
        for (s, &(start, end)) in shard_ranges(sim.scenario.num_objects, shards)
            .iter()
            .enumerate()
        {
            for slot in &mut shard_of[start as usize..end as usize] {
                *slot = s;
            }
        }
        let seq_bell = Arc::new(spsc::Doorbell::new());
        let mut to_workers = Vec::with_capacity(shards);
        let mut from_rx = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for s in 0..shards {
            // One ring per direction per worker; each worker parks on
            // its own doorbell, the sequencer on the shared one.
            let (to_tx, to_rx) =
                spsc::channel::<ToShard>(RING_CAPACITY, Arc::new(spsc::Doorbell::new()));
            let (from_tx, from) = spsc::channel::<FromShard>(RING_CAPACITY, Arc::clone(&seq_bell));
            to_workers.push(to_tx);
            from_rx.push(from);
            let handle = std::thread::Builder::new()
                .name(format!("radar-shard-{s}"))
                .spawn(move || worker_loop(s, to_rx, from_tx, profiled))
                .expect("spawn shard worker");
            workers.push(handle);
        }
        ShardRuntime {
            to_workers,
            from_rx,
            seq_bell,
            seq_backoff: spsc::Backoff::new(),
            workers,
            shard_of,
            pending: VecDeque::new(),
            floor: BinaryHeap::new(),
            floor_staging: Vec::new(),
            bounds: vec![0; num_objects],
            bound_versions: vec![u64::MAX; num_objects],
            bound_routing_gen: None,
            accum: (0..shards).map(|_| Vec::new()).collect(),
            item_pool: Vec::new(),
            reply_pool: Vec::new(),
            next_item_id: 0,
            split: false,
            prof: profiled.then(|| Box::new(SeqProf::new(shards))),
            live: sim.shard_profile_live.clone(),
        }
    }

    /// Refreshes each object's arrival-key lower bound: the minimum
    /// propagation delay from its redirector to any replica. Valid for
    /// the whole window because replica sets only change at barriers.
    /// Bounds are memoized across windows keyed on the object's
    /// membership version and the routing generation, so the common
    /// barrier (a placement epoch touching a handful of objects) pays
    /// only for what actually changed instead of a full rebuild.
    fn rebuild_bounds(&mut self, sim: &Simulation) {
        let routing = sim.view.generation();
        let routing_changed = self.bound_routing_gen != Some(routing);
        self.bound_routing_gen = Some(routing);
        for (i, bound) in self.bounds.iter_mut().enumerate() {
            let object = ObjectId::new(i as u32);
            let version = sim.redirector.directory().version(object);
            if !routing_changed && self.bound_versions[i] == version {
                continue;
            }
            self.bound_versions[i] = version;
            let rnode = sim.redirector_node_of(object);
            *bound = sim
                .redirector
                .replicas(object)
                .iter()
                .map(|r| {
                    let delay = sim
                        .scenario
                        .network
                        .propagation_time(sim.view.distance(rnode, r.host));
                    SimDuration::from_secs(delay).as_micros()
                })
                .min()
                .unwrap_or(u64::MAX);
        }
    }

    /// Splits directory + engine state across the workers for a new
    /// parallel window.
    fn split(&mut self, sim: &mut Simulation) {
        debug_assert!(!self.split);
        if let Some(p) = &mut self.prof {
            // Everything since the last transition was handler work.
            p.clock.charge(&mut p.lane, SpanKind::Busy);
        }
        self.rebuild_bounds(sim);
        let net = Arc::new(NetSnapshot::from_view(&sim.view, sim.fault_gen));
        let dirs = sim.redirector.split_shards(self.to_workers.len());
        let engines = sim.redirect.split_shards(self.to_workers.len());
        for (s, (redirector, engine)) in dirs.into_iter().zip(engines).enumerate() {
            self.send_state(
                s,
                ToShard::State(
                    Box::new(ShardState { redirector, engine }),
                    Arc::clone(&net),
                ),
            );
        }
        self.split = true;
        if let Some(p) = &mut self.prof {
            p.clock.charge(&mut p.lane, SpanKind::Reunite);
        }
    }

    /// Ring send for control messages (state installs, collects). The
    /// ring is effectively empty at these points, so a full ring only
    /// means the worker is momentarily behind — just yield.
    fn send_state(&mut self, shard: usize, mut msg: ToShard) {
        loop {
            match self.to_workers[shard].try_send(msg) {
                Ok(()) => return,
                Err(back) => {
                    assert!(
                        !self.to_workers[shard].is_closed(),
                        "a shard worker exited early"
                    );
                    msg = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Ring send for batches. A full ring here means the worker is
    /// saturated; keep the reply lanes draining (store-only, no
    /// commits) so it can make progress, then retry.
    fn send_batch(&mut self, shard: usize, mut msg: ToShard) {
        loop {
            match self.to_workers[shard].try_send(msg) {
                Ok(()) => return,
                Err(back) => {
                    assert!(
                        !self.to_workers[shard].is_closed(),
                        "a shard worker exited early"
                    );
                    msg = back;
                    self.absorb_outcomes();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Ships shard `s`'s accumulated batch if non-empty, recycling
    /// pooled buffers for the next one.
    fn flush_shard(&mut self, s: usize) {
        if self.accum[s].is_empty() {
            return;
        }
        let fresh = self.item_pool.pop().unwrap_or_default();
        let items = std::mem::replace(&mut self.accum[s], fresh);
        let reply = self.reply_pool.pop().unwrap_or_default();
        self.send_batch(s, ToShard::Batch(items, reply));
    }

    /// The object's arrival-key lower bound for the current window.
    fn bound_of(&self, object: ObjectId) -> u64 {
        self.bounds[object.index()]
    }

    /// Pops a maximal run of consecutive `Redirect` events, pinning
    /// every serial-order fact for the whole run in one block, and
    /// appends each item to its owning shard's accumulating batch
    /// (shipped once it reaches [`BATCH_FLUSH_TARGET`], or earlier by
    /// a commit or barrier).
    ///
    /// The caller has already validated the first head: it is a
    /// `Redirect`, within the horizon, and below `heap_floor` (the
    /// folded floor over *previously* pending items, which cannot
    /// change while the run only pops). Run continuation additionally
    /// requires the next head not to outsort the run's own cheapest
    /// possible arrival; equality is fine — everything already queued
    /// wins the sequence tie-break against the run's future-reserved
    /// arrivals.
    fn defer_run(&mut self, sim: &mut Simulation, end: SimTime, heap_floor: Option<(u64, u64)>) {
        let cap = sim.shard_batch_cap.unwrap_or(usize::MAX).max(1);
        let tracing = sim.events.tracing;
        let profiled = self.prof.is_some();
        let start = self.pending.len();
        let mut qd = 0u32;
        let mut run_min_us = u64::MAX;
        let mut count = 0usize;
        loop {
            let (t, ev) = sim.queue.pop().expect("validated head exists");
            let Event::Redirect {
                object,
                gateway,
                t0,
                cause,
            } = ev
            else {
                unreachable!("run continuation only admits redirect heads")
            };
            if count == 0 {
                // Depth snapshot before the run's pending-estimate bump:
                // the serial per-item sample is constant across an
                // uninterrupted run (each pop shrinks the queue exactly
                // as the previous item's owed arrival grows), so the
                // first item's value covers all of them.
                qd = sim.depth();
            }
            let rnode = sim.redirector_node_of(object);
            sim.metrics.redirector_requests[rnode.index()] += 1;
            run_min_us = run_min_us.min(t.as_micros().saturating_add(self.bound_of(object)));
            let id = self.next_item_id;
            self.next_item_id += 1;
            self.pending.push_back(PendingSlot {
                id,
                object,
                gateway,
                rnode,
                t,
                t0,
                cause,
                qd,
                queue_seq: 0,
                rec_seq: 0,
                deferred_at: profiled.then(Instant::now),
                outcome: None,
            });
            self.accum[self.shard_of[object.index()]].push(WorkItem {
                id,
                object,
                gateway,
                explain: tracing,
            });
            count += 1;
            if count >= cap {
                break;
            }
            let Some((head_t, head_seq)) = sim.queue.peek_key() else {
                break;
            };
            if head_t > end {
                break;
            }
            let head_us = head_t.as_micros();
            if head_us > run_min_us {
                break;
            }
            if let Some(floor) = heap_floor {
                if (head_us, head_seq) >= floor {
                    break;
                }
            }
            if !matches!(sim.queue.peek(), Some(Event::Redirect { .. })) {
                break;
            }
        }
        // Pin the run's sequence numbers as contiguous blocks: no
        // handler ran between these pops, so nothing else could have
        // claimed a number — the blocks are exactly the per-item
        // reservations the serial loop would have made.
        let first_queue_seq = sim.queue.reserve_seqs(count as u64);
        let first_rec_seq = if tracing {
            sim.events.reserve_seqs(count as u64)
        } else {
            0
        };
        let ShardRuntime {
            pending,
            bounds,
            floor_staging,
            ..
        } = self;
        for (i, slot) in pending.iter_mut().skip(start).enumerate() {
            slot.queue_seq = first_queue_seq + i as u64;
            if tracing {
                slot.rec_seq = first_rec_seq + i as u64;
            }
            let key = slot
                .t
                .as_micros()
                .saturating_add(bounds[slot.object.index()]);
            floor_staging.push((key, slot.queue_seq, slot.id));
        }
        sim.pending_push_estimate += count as u32;
        // Ship only batches that reached the flush target; the rest
        // stay and keep growing across subsequent runs. A forced cap
        // (tests) lowers the target so capped runs still ship whole.
        let flush_at = cap.min(BATCH_FLUSH_TARGET);
        for s in 0..self.accum.len() {
            if self.accum[s].len() >= flush_at {
                self.flush_shard(s);
            }
        }
        if let Some(p) = &mut self.prof {
            p.lane.items += count as u64;
        }
    }

    /// The smallest `(µs, seq)` key any pending arrival could be
    /// scheduled under, or `None` with nothing pending. The queue head
    /// may be popped only while its key is strictly below this floor.
    /// Staged entries are folded in here — the first moment a conflict
    /// is actually possible — and entries whose items already committed
    /// are dropped on the way.
    fn floor_key(&mut self) -> Option<(u64, u64)> {
        let Some(front) = self.pending.front() else {
            self.floor_staging.clear();
            self.floor.clear();
            return None;
        };
        let front_id = front.id;
        for &(key, seq, id) in &self.floor_staging {
            if id >= front_id {
                self.floor.push(std::cmp::Reverse((key, seq, id)));
            }
        }
        self.floor_staging.clear();
        while let Some(&std::cmp::Reverse((key, seq, id))) = self.floor.peek() {
            if id < front_id {
                self.floor.pop();
            } else {
                return Some((key, seq));
            }
        }
        None
    }

    /// Files one answered batch into the pending FIFO and recycles its
    /// buffers. (`State` messages only appear in the collect loop.)
    fn store_msg(&mut self, msg: FromShard) {
        match msg {
            FromShard::Outcomes(mut outcomes, spent) => {
                if let Some(p) = &mut self.prof {
                    // Batch size histogram: work items per Outcomes
                    // message — the hand-off amortization factor.
                    p.batch_items.record(outcomes.len() as u64);
                }
                let front_id = self
                    .pending
                    .front()
                    .expect("outcomes only arrive while items are pending")
                    .id;
                for out in outcomes.drain(..) {
                    let idx = (out.id - front_id) as usize;
                    let slot = &mut self.pending[idx];
                    // Hand-off latency = defer → outcome received back
                    // on the sequencer, per decision: the full round
                    // trip through batching and the worker.
                    if let Some(at) = slot.deferred_at.take() {
                        let elapsed = at.elapsed().as_nanos() as u64;
                        if let Some(p) = &mut self.prof {
                            p.handoff_ns.record(elapsed);
                        }
                    }
                    slot.outcome = Some(out);
                }
                self.reply_pool.push(outcomes);
                debug_assert!(spent.is_empty());
                self.item_pool.push(spent);
            }
            FromShard::State { .. } => unreachable!("states are only collected at barriers"),
        }
    }

    /// Moves every already-delivered reply message into the pending
    /// FIFO, without blocking or committing. Returns the number of
    /// messages absorbed.
    fn absorb_outcomes(&mut self) -> u32 {
        let mut messages = 0;
        for i in 0..self.from_rx.len() {
            while let Some(msg) = self.from_rx[i].try_recv() {
                messages += 1;
                self.store_msg(msg);
            }
        }
        messages
    }

    /// Absorbs any outcomes already delivered and commits the pending
    /// front as far as it goes, without blocking.
    fn drain_ready(&mut self, sim: &mut Simulation) {
        self.absorb_outcomes();
        while self.pending.front().is_some_and(|s| s.outcome.is_some()) {
            let slot = self.pending.pop_front().expect("front exists");
            commit_slot(sim, slot);
        }
    }

    /// One adaptive wait step on the shared reply bell: spin, yield, or
    /// park until some worker→sequencer ring has traffic.
    fn wait_for_replies(&mut self) {
        assert!(
            self.from_rx.iter().all(|rx| !rx.is_closed()),
            "a shard worker exited early"
        );
        let from_rx = &self.from_rx;
        self.seq_backoff.idle(&self.seq_bell, || {
            from_rx.iter().any(|rx| !rx.is_empty() || rx.is_closed())
        });
    }

    /// Blocks until the pending front's outcome arrives, then commits it.
    fn commit_front_blocking(&mut self, sim: &mut Simulation) {
        // Only the front's answer gates this commit. If its item has
        // not shipped yet it is necessarily the oldest unshipped item
        // of its owning shard — first in that shard's batch — so ship
        // that batch alone and let every other shard's keep growing.
        let front = self.pending.front().expect("caller checked pending");
        let front_shard = self.shard_of[front.object.index()];
        if self.accum[front_shard]
            .first()
            .is_some_and(|item| item.id == front.id)
        {
            self.flush_shard(front_shard);
        }
        if let Some(p) = &mut self.prof {
            // Everything since the last transition was sequencer work.
            p.clock.charge(&mut p.lane, SpanKind::Busy);
        }
        while self.pending.front().is_some_and(|s| s.outcome.is_none()) {
            if self.absorb_outcomes() > 0 {
                self.seq_backoff.success();
            } else {
                self.wait_for_replies();
            }
        }
        if let Some(p) = &mut self.prof {
            // Attributed to the channel in steady state, to the barrier
            // while a flush is draining the pending FIFO.
            let kind = p.wait_kind;
            p.clock.charge(&mut p.lane, kind);
        }
        if let Some(slot) = self.pending.pop_front() {
            commit_slot(sim, slot);
        }
    }

    /// Epoch barrier: flush every pending redirect, recall every shard's
    /// state, and reunite it with the parent directory and engine. On
    /// return the sequencer may run any handler on fully-consistent
    /// state.
    ///
    /// `cause` names the event class that forced the barrier for the
    /// profile's barrier counters; the final end-of-run barrier passes
    /// `None`.
    fn barrier(&mut self, sim: &mut Simulation, cause: Option<BarrierCause>) {
        if !self.split {
            return;
        }
        if let Some(p) = &mut self.prof {
            if let Some(c) = cause {
                p.barriers[c as usize] += 1;
            }
            p.clock.charge(&mut p.lane, SpanKind::Busy);
            // Front-commit waits inside the flush drain the barrier,
            // not the steady-state channel.
            p.wait_kind = SpanKind::BarrierDrain;
        }
        while !self.pending.is_empty() {
            self.commit_front_blocking(sim);
        }
        self.floor.clear();
        self.floor_staging.clear();
        for s in 0..self.to_workers.len() {
            self.send_state(s, ToShard::Collect);
        }
        let mut states: Vec<Option<Box<ShardState>>> =
            (0..self.to_workers.len()).map(|_| None).collect();
        let mut collected = 0;
        while collected < states.len() {
            let mut progressed = false;
            for i in 0..self.from_rx.len() {
                while let Some(msg) = self.from_rx[i].try_recv() {
                    progressed = true;
                    match msg {
                        FromShard::State { shard, state, lane } => {
                            debug_assert!(states[shard].is_none());
                            states[shard] = Some(state);
                            if let (Some(p), Some(lane)) = (&mut self.prof, lane) {
                                // Cumulative snapshot; newer collects
                                // replace older ones outright.
                                p.worker_lanes[shard] = lane;
                            }
                            collected += 1;
                        }
                        FromShard::Outcomes(..) => {
                            unreachable!("all outcomes were committed before collect")
                        }
                    }
                }
            }
            if progressed {
                self.seq_backoff.success();
            } else if collected < states.len() {
                self.wait_for_replies();
            }
        }
        if let Some(p) = &mut self.prof {
            p.clock.charge(&mut p.lane, SpanKind::BarrierDrain);
            p.wait_kind = SpanKind::ChannelWait;
        }
        let mut dirs = Vec::with_capacity(states.len());
        let mut engines = Vec::with_capacity(states.len());
        for state in states {
            let state = state.expect("collected above");
            dirs.push(state.redirector);
            engines.push(state.engine);
        }
        sim.redirector.absorb_shards(dirs);
        sim.redirect.absorb_shards(engines);
        self.split = false;
        if let Some(p) = &mut self.prof {
            p.clock.charge(&mut p.lane, SpanKind::Reunite);
            if let Some(live) = &self.live {
                live.publish(p.assemble(self.to_workers.len()));
            }
        }
        debug_assert!(
            sim.events.reorder_drained(),
            "reserved recorder sequences must be emitted by the barrier"
        );
    }

    fn shutdown(mut self) {
        debug_assert!(!self.split && self.pending.is_empty());
        // Every accumulated item has a pending slot, so an empty
        // pending FIFO means every batch shipped.
        debug_assert!(self.accum.iter().all(|b| b.is_empty()));
        // Dropping the senders closes the rings; the doorbell wakes any
        // parked worker so it observes EOF and exits.
        self.to_workers.clear();
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                panic!("a shard worker panicked");
            }
        }
    }
}

/// Commits one answered redirect: emits the decision under its reserved
/// recorder sequence and schedules the `ArriveAtHost` under its reserved
/// queue sequence — reproducing exactly what the serial handler's tail
/// would have done at defer time.
fn commit_slot(sim: &mut Simulation, slot: PendingSlot) {
    sim.pending_push_estimate -= 1;
    let outcome = slot.outcome.expect("committed with an outcome");
    let host = outcome.host;
    let decision = if sim.events.tracing {
        let constant = sim.scenario.params.distribution_constant;
        sim.events.emit_reserved_decision(
            slot.rec_seq,
            slot.t.as_secs(),
            slot.qd,
            slot.cause,
            |d| {
                fill_decision(
                    d,
                    slot.object,
                    slot.gateway,
                    host,
                    outcome.explanation.as_deref(),
                    false,
                    constant,
                );
            },
        );
        slot.rec_seq
    } else {
        0
    };
    let delay = sim.propagation(slot.rnode, host);
    sim.queue.schedule_reserved(
        slot.t + SimDuration::from_secs(delay),
        slot.queue_seq,
        Event::ArriveAtHost {
            object: slot.object,
            gateway: slot.gateway,
            host,
            t0: slot.t0,
            cause: decision,
        },
    );
}

impl Simulation {
    /// `true` while the invariants of a parallel window hold: no active
    /// fault and a fully connected topology, so every replica of every
    /// object is usable from everywhere.
    fn parallel_window_ok(&self) -> bool {
        self.fault_state.all_clear() && self.topology_connected()
    }

    /// `true` when every node is reachable from node 0 (which, on an
    /// undirected topology, makes every pair mutually reachable).
    fn topology_connected(&self) -> bool {
        let zero = NodeId::new(0);
        (1..self.hosts.len()).all(|i| !self.view.path(zero, NodeId::new(i as u16)).is_empty())
    }

    /// Runs the simulation to completion on `shards` worker threads and
    /// returns the finalized report.
    ///
    /// The run is deterministic for any fixed shard count, and its
    /// observable outputs — the flight-recorder stream, the metrics, the
    /// final report — are byte-identical to [`run`](Simulation::run).
    /// `--shards 1`, selection policies without candidate caching, and
    /// partially-run simulations delegate to the serial loop outright.
    /// See the module docs of `shard.rs` for the design.
    ///
    /// Event-loop profiling ([`Simulation::enable_loop_profile`]) covers
    /// every event the sequencer handles itself; redirects decided on a
    /// worker shard do not appear as loop-profile rows — their cost is
    /// captured by the shard profile
    /// ([`Simulation::enable_shard_profile`]) instead. Observer
    /// callbacks other than the typed event feed (`on_request_served`,
    /// load samples, …) are delivered when their handler runs, which in
    /// parallel windows may interleave differently with the event feed
    /// than in a serial run; the callbacks themselves, their order, and
    /// all aggregates are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn run_sharded(mut self, shards: usize) -> RunReport {
        assert!(shards >= 1, "at least one shard is required");
        // The serial loop IS the single-shard loop; it is also the only
        // correct loop for policies that bypass the candidate cache and
        // for simulations that already emitted events serially.
        if shards == 1 || !self.selection.supports_candidate_cache() || self.events.next_seq != 0 {
            self.run_until(self.scenario.duration);
            return self.finish();
        }
        self.events.enable_reorder();
        if !self.started {
            self.bootstrap();
            self.started = true;
        }
        let end = SimTime::from_secs(self.scenario.duration);
        let mut runtime = ShardRuntime::new(&self, shards);
        let mut parallel = self.parallel_window_ok();
        if parallel {
            runtime.split(&mut self);
        }
        loop {
            if parallel {
                runtime.drain_ready(&mut self);
                let Some((head_t, head_seq)) = self.queue.peek_key() else {
                    if runtime.pending.is_empty() {
                        break;
                    }
                    runtime.commit_front_blocking(&mut self);
                    continue;
                };
                if head_t > end {
                    if runtime.pending.is_empty() {
                        break;
                    }
                    runtime.commit_front_blocking(&mut self);
                    continue;
                }
                let floor = runtime.floor_key();
                if let Some(floor) = floor {
                    if (head_t.as_micros(), head_seq) >= floor {
                        // The queue head might sort after a pending
                        // arrival; resolve the front before popping.
                        runtime.commit_front_blocking(&mut self);
                        continue;
                    }
                }
                if matches!(self.queue.peek(), Some(Event::Redirect { .. })) {
                    // The hot path: defer a whole run of consecutive
                    // redirects as one batch per shard.
                    runtime.defer_run(&mut self, end, floor);
                    continue;
                }
                let (t, ev) = self.queue.pop().expect("peeked event exists");
                if let Some(p) = &mut runtime.prof {
                    p.lane.items += 1;
                }
                match ev {
                    Event::Redirect { .. } => {
                        unreachable!("redirect heads take the batched defer path")
                    }
                    ev @ (Event::Placement { .. }
                    | Event::ProviderUpdate
                    | Event::UpdateDeliver { .. }
                    | Event::DeclareDead { .. }) => {
                        let cause = match &ev {
                            Event::Placement { .. } => BarrierCause::Placement,
                            Event::ProviderUpdate | Event::UpdateDeliver { .. } => {
                                BarrierCause::ProviderUpdate
                            }
                            _ => BarrierCause::DeclareDead,
                        };
                        runtime.barrier(&mut self, Some(cause));
                        self.dispatch(t, ev);
                        runtime.split(&mut self);
                    }
                    Event::Fault { .. } => {
                        runtime.barrier(&mut self, Some(BarrierCause::Fault));
                        self.dispatch(t, ev);
                        parallel = self.parallel_window_ok();
                        if parallel {
                            runtime.split(&mut self);
                        }
                    }
                    other => self.dispatch(t, other),
                }
            } else {
                let Some(next) = self.queue.peek_time() else {
                    break;
                };
                if next > end {
                    break;
                }
                let (t, ev) = self.queue.pop().expect("peeked event exists");
                if let Some(p) = &mut runtime.prof {
                    p.lane.items += 1;
                }
                let was_fault = matches!(ev, Event::Fault { .. });
                self.dispatch(t, ev);
                if was_fault {
                    parallel = self.parallel_window_ok();
                    if parallel {
                        runtime.split(&mut self);
                    }
                }
            }
        }
        if parallel {
            runtime.barrier(&mut self, None);
        }
        if let Some(mut p) = runtime.prof.take() {
            // Close the final span and claim serial-window cache traffic
            // (the parent engine's own tally) for the sequencer lane.
            p.clock.charge(&mut p.lane, SpanKind::Busy);
            let (hits, misses) = self.redirect.take_cache_stats();
            p.lane.cache_hits += hits;
            p.lane.cache_misses += misses;
            let profile = p.assemble(shards);
            if let Some(live) = &runtime.live {
                live.publish(profile.clone());
            }
            self.shard_profile = Some(profile);
        }
        runtime.shutdown();
        debug_assert!(self.events.reorder_drained());
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_simnet::builders;

    #[test]
    fn snapshot_mirrors_the_routing_view() {
        let view = RoutingView::new(builders::uunet());
        let net = NetSnapshot::from_view(&view, 7);
        let n = view.topology().len();
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId::new(a as u16), NodeId::new(b as u16));
                assert_eq!(net.distance(a, b), view.distance(a, b));
            }
        }
        assert_eq!(net.routing_gen(), view.generation());
        assert_eq!(net.fault_gen(), 7);
    }
}
