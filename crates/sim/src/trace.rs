//! Request traces: capture a run's arrival stream and replay it.
//!
//! The paper's companion report evaluates the protocol on *measured
//! traces* rather than synthetic workloads. This module is that path:
//! capture the `(time, gateway, object)` arrival stream of any run (or
//! convert one from real access logs via [`Trace::from_text`]), then
//! feed it back with [`crate::Simulation::replay`] — e.g. to compare
//! policies on byte-identical demand, or to re-run a production day
//! against candidate parameters.

use std::fmt;

/// One request arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Arrival time at the gateway (seconds).
    pub t: f64,
    /// The gateway node.
    pub gateway: u16,
    /// The requested object.
    pub object: u32,
}

/// Errors from trace parsing and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line did not parse as `time gateway object`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Entries are not sorted by time.
    Unsorted {
        /// Index of the first out-of-order entry.
        index: usize,
    },
    /// A timestamp was negative or not finite.
    BadTime {
        /// Index of the offending entry.
        index: usize,
        /// The rejected value.
        t: f64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed { line, content } => {
                write!(
                    f,
                    "line {line}: expected `time gateway object`, got {content:?}"
                )
            }
            TraceError::Unsorted { index } => {
                write!(f, "trace entries must be sorted by time (entry {index})")
            }
            TraceError::BadTime { index, t } => {
                write!(
                    f,
                    "entry {index}: time must be finite and non-negative, got {t}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A time-ordered request trace.
///
/// # Examples
///
/// ```
/// use radar_sim::Trace;
/// let trace = Trace::from_text("0.5 3 10\n1.0 7 10\n")?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.entries()[1].gateway, 7);
/// # Ok::<(), radar_sim::TraceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Builds a trace from entries, validating time order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on unsorted or invalid timestamps.
    pub fn new(entries: Vec<TraceEntry>) -> Result<Self, TraceError> {
        for (index, e) in entries.iter().enumerate() {
            if !(e.t.is_finite() && e.t >= 0.0) {
                return Err(TraceError::BadTime { index, t: e.t });
            }
            if index > 0 && e.t < entries[index - 1].t {
                return Err(TraceError::Unsorted { index });
            }
        }
        Ok(Self { entries })
    }

    /// Parses the line format `time gateway object` (whitespace
    /// separated; `#` comments and blank lines ignored) — the shape a
    /// sanitized access log reduces to.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on malformed lines or ordering violations.
    pub fn from_text(text: &str) -> Result<Self, TraceError> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut words = content.split_whitespace();
            let parsed = (|| {
                let t: f64 = words.next()?.parse().ok()?;
                let gateway: u16 = words.next()?.parse().ok()?;
                let object: u32 = words.next()?.parse().ok()?;
                if words.next().is_some() {
                    return None;
                }
                Some(TraceEntry { t, gateway, object })
            })();
            match parsed {
                Some(e) => entries.push(e),
                None => {
                    return Err(TraceError::Malformed {
                        line,
                        content: content.to_string(),
                    })
                }
            }
        }
        Self::new(entries)
    }

    /// Serializes to the [`from_text`](Self::from_text) line format.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 16);
        for e in &self.entries {
            out.push_str(&format!("{} {} {}\n", e.t, e.gateway, e.object));
        }
        out
    }

    /// The entries, in time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Time of the last request, or 0 for an empty trace.
    pub fn duration(&self) -> f64 {
        self.entries.last().map_or(0.0, |e| e.t)
    }
}

impl FromIterator<TraceEntry> for Trace {
    /// Collects entries **without** validating order; use [`Trace::new`]
    /// for untrusted input. Intended for recorder internals that emit in
    /// time order by construction.
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_serialize_round_trip() {
        let text = "# a comment\n0 0 5\n1.5 3 10   # trailing comment\n\n2.5 52 9999\n";
        let trace = Trace::from_text(text).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.entries()[1].object, 10);
        assert_eq!(trace.duration(), 2.5);
        let reparsed = Trace::from_text(&trace.to_text()).unwrap();
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn malformed_lines_rejected() {
        let err = Trace::from_text("0 0\n").unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
        let err = Trace::from_text("0 0 1 extra\n").unwrap_err();
        assert!(matches!(err, TraceError::Malformed { .. }));
        let err = Trace::from_text("zero 0 1\n").unwrap_err();
        assert!(matches!(err, TraceError::Malformed { .. }));
    }

    #[test]
    fn ordering_and_time_validated() {
        let err = Trace::from_text("1.0 0 0\n0.5 0 0\n").unwrap_err();
        assert!(matches!(err, TraceError::Unsorted { index: 1 }));
        let err = Trace::new(vec![TraceEntry {
            t: f64::NAN,
            gateway: 0,
            object: 0,
        }])
        .unwrap_err();
        assert!(matches!(err, TraceError::BadTime { .. }));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_text("# nothing\n").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0.0);
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            TraceError::Malformed {
                line: 1,
                content: "x".into(),
            },
            TraceError::Unsorted { index: 2 },
            TraceError::BadTime { index: 0, t: -1.0 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
