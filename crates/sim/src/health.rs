//! Fault handling and platform-health maintenance: applying scheduled
//! fault transitions (with incremental routing repair), the
//! declare-dead sweep, and re-replication back to the replica floor.

use radar_core::{HostState, ObjectId};
use radar_obs::EventKind as ObsEventKind;
use radar_simcore::{FifoServer, SimDuration, SimTime};
use radar_simnet::NodeId;

use crate::faults::TransitionKind;
use crate::platform::{Event, Simulation};

/// Human-readable description of a fault transition, for
/// [`radar_obs::EventKind::Fault`] events.
fn transition_desc(kind: TransitionKind) -> String {
    match kind {
        TransitionKind::HostCrash(h) => format!("host-crash {h}"),
        TransitionKind::HostRecover(h) => format!("host-recover {h}"),
        TransitionKind::LinkFail(a, b) => format!("link-fail {a}-{b}"),
        TransitionKind::LinkHeal(a, b) => format!("link-heal {a}-{b}"),
        TransitionKind::LinkDegrade(a, b, f) => format!("link-degrade {a}-{b} x{f}"),
        TransitionKind::LinkRestore(a, b, f) => format!("link-restore {a}-{b} x{f}"),
    }
}

impl Simulation {
    /// Applies the `index`-th scheduled fault transition and schedules
    /// the next one.
    pub(crate) fn on_fault(&mut self, t: SimTime, index: usize) {
        if let Some(next) = self.fault_schedule.get(index + 1) {
            self.queue.schedule(
                SimTime::from_secs(next.t),
                Event::Fault { index: index + 1 },
            );
        }
        let transition = self.fault_schedule[index];
        let now = t.as_secs();
        let routes_dirty = self.fault_state.apply(transition.kind);
        // Any transition can change replica usability (crashes most of
        // all); bumping unconditionally keeps the redirect engine's
        // invalidation rule trivially safe.
        self.fault_gen += 1;
        self.metrics.faults_injected += 1;
        if self.events.tracing {
            let qd = self.depth();
            self.events.emit(
                now,
                qd,
                0,
                ObsEventKind::Fault {
                    desc: transition_desc(transition.kind),
                },
            );
        }
        for obs in &mut self.events.observers {
            obs.on_fault(&transition);
        }
        match transition.kind {
            TransitionKind::HostCrash(h) => {
                let i = h as usize;
                // Everything queued or in service on the host is lost:
                // bump the epoch (stale completions fail) and replace
                // the server with an empty one.
                self.host_epoch[i] += 1;
                self.servers[i] = FifoServer::with_capacity(self.scenario.capacity_of(i));
                self.queue.schedule(
                    t + SimDuration::from_secs(self.scenario.faults.declare_dead_after()),
                    Event::DeclareDead {
                        host: NodeId::new(h),
                        epoch: self.host_epoch[i],
                    },
                );
                self.refresh_object_health(now);
            }
            TransitionKind::HostRecover(h) => {
                if self.fault_state.host_up(h) {
                    let i = h as usize;
                    if self.declared_dead[i] {
                        // Its replicas were purged while it was away; it
                        // rejoins as an empty host.
                        self.declared_dead[i] = false;
                        let mut fresh = HostState::new(NodeId::new(h), self.scenario.params_of(i));
                        if let Some(limit) = self.scenario.storage_limit {
                            fresh.set_storage_limit(limit as usize);
                        }
                        self.hosts[i] = fresh;
                    }
                    self.refresh_object_health(now);
                    self.re_replicate(t);
                }
            }
            TransitionKind::LinkFail(a, b) => {
                if routes_dirty {
                    // Incremental repair: only destinations whose BFS
                    // the severed link could change are recomputed.
                    self.view.set_link(NodeId::new(a), NodeId::new(b), false);
                }
            }
            TransitionKind::LinkHeal(a, b) => {
                if routes_dirty {
                    self.view.set_link(NodeId::new(a), NodeId::new(b), true);
                }
            }
            TransitionKind::LinkDegrade(..) | TransitionKind::LinkRestore(..) => {}
        }
    }

    /// The declare-dead timer fired: if the host is still down from the
    /// same crash, purge its replicas and re-replicate what fell below
    /// the floor.
    pub(crate) fn on_declare_dead(&mut self, t: SimTime, host: NodeId, epoch: u32) {
        let i = host.index();
        if self.host_epoch[i] != epoch
            || self.fault_state.host_up(i as u16)
            || self.declared_dead[i]
        {
            return;
        }
        self.declared_dead[i] = true;
        let purged = self.redirector.purge_host(host);
        if self.events.tracing {
            // Purging resets the surviving replicas' request counts —
            // one CountsReset per affected object.
            let qd = self.depth();
            for object in purged {
                self.events.emit(
                    t.as_secs(),
                    qd,
                    0,
                    ObsEventKind::CountsReset {
                        object: object.index() as u32,
                        cause: radar_obs::ResetCause::Purge,
                    },
                );
            }
        }
        self.refresh_object_health(t.as_secs());
        self.re_replicate(t);
    }

    /// The object's primary node, standing in for the provider's origin
    /// server. When the recorded primary is itself down, the designation
    /// moves to the most central live host. `None` when every host is
    /// down.
    pub(crate) fn live_primary(&mut self, object: ObjectId) -> Option<NodeId> {
        let p = self.catalog.primary(object);
        if self.fault_state.host_up(p.index() as u16) {
            return Some(p);
        }
        let c = self
            .view
            .table()
            .nodes_by_centrality()
            .into_iter()
            .find(|n| self.fault_state.host_up(n.index() as u16))?;
        self.catalog.set_primary(object, c);
        Some(c)
    }

    /// Re-checks one object's live-replica count against the
    /// availability and replica-floor trackers, opening or closing the
    /// corresponding intervals.
    pub(crate) fn refresh_one(&mut self, now: f64, object: ObjectId) {
        let i = object.index() as u32;
        let live = self
            .redirector
            .replicas(object)
            .iter()
            .filter(|r| self.fault_state.host_up(r.host.index() as u16))
            .count() as u32;
        if live == 0 {
            self.unavailable_since.entry(i).or_insert(now);
        } else if let Some(since) = self.unavailable_since.remove(&i) {
            self.metrics.unavailable_object_seconds += now - since;
        }
        if live < self.scenario.faults.min_replicas() {
            self.below_min_since.entry(i).or_insert(now);
        } else if let Some(since) = self.below_min_since.remove(&i) {
            self.metrics.restore_time.record(now - since);
        }
    }

    /// Full sweep of [`refresh_one`](Self::refresh_one) after a liveness
    /// change.
    fn refresh_object_health(&mut self, now: f64) {
        if self.scenario.faults.is_empty() {
            return;
        }
        for i in 0..self.scenario.num_objects {
            self.refresh_one(now, ObjectId::new(i));
        }
    }

    /// Restores every object to the replica floor: copies from a live
    /// replica onto the live host with the most load-report headroom, or
    /// — when no live copy exists anywhere — re-installs the object at
    /// its primary (an origin fetch). Runs after a host is declared dead
    /// and after recoveries.
    fn re_replicate(&mut self, t: SimTime) {
        if self.scenario.faults.is_empty() {
            return;
        }
        let now = t.as_secs();
        let floor = self.scenario.faults.min_replicas();
        for i in 0..self.scenario.num_objects {
            let object = ObjectId::new(i);
            loop {
                let live: Vec<NodeId> = self
                    .redirector
                    .replicas(object)
                    .iter()
                    .map(|r| r.host)
                    .filter(|h| self.fault_state.host_up(h.index() as u16))
                    .collect();
                if live.len() as u32 >= floor {
                    break;
                }
                let elapsed = now - self.below_min_since.get(&i).copied().unwrap_or(now);
                let target = if let Some(&source) = live.first() {
                    // Copy onto the live host with the most headroom on
                    // the load-report board (ties broken by node id).
                    let holders: Vec<NodeId> = self
                        .redirector
                        .replicas(object)
                        .iter()
                        .map(|r| r.host)
                        .collect();
                    let mut cands: Vec<(f64, usize)> = (0..self.hosts.len())
                        .filter(|&j| self.fault_state.host_up(j as u16))
                        .filter(|&j| !holders.contains(&NodeId::new(j as u16)))
                        .map(|j| {
                            (
                                self.hosts[j].params().low_watermark - self.load_reports[j].1,
                                j,
                            )
                        })
                        .collect();
                    if cands.is_empty() {
                        break; // fewer live hosts than the floor
                    }
                    cands.sort_by(|a, b| {
                        b.0.partial_cmp(&a.0)
                            .expect("headroom is never NaN")
                            .then(a.1.cmp(&b.1))
                    });
                    let target = NodeId::new(cands[0].1 as u16);
                    let hops = self.view.distance(source, target);
                    self.metrics
                        .record_overhead(now, (self.scenario.object_size * hops as u64) as f64);
                    self.charge_links(source, target, self.scenario.object_size);
                    target
                } else {
                    // Origin fetch: every copy was lost with its hosts.
                    let Some(p) = self.live_primary(object) else {
                        break; // the whole platform is down
                    };
                    p
                };
                self.install(object, target);
                self.metrics.re_replications += 1;
                if self.events.tracing {
                    let qd = self.depth();
                    self.events.emit(
                        now,
                        qd,
                        0,
                        ObsEventKind::ReReplication {
                            object: i,
                            target: target.index() as u16,
                            elapsed,
                        },
                    );
                }
                for obs in &mut self.events.observers {
                    obs.on_re_replication(now, i, target.index() as u16, elapsed);
                }
            }
            self.refresh_one(now, object);
        }
    }
}
