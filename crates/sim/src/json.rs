//! A dependency-free JSON emitter for [`RunReport`].
//!
//! The workspace builds fully offline, so report serialization is
//! hand-rolled: a tiny [`Json`] document model plus a pretty printer that
//! matches the conventional two-space-indent layout. Numbers use Rust's
//! shortest-roundtrip `f64` formatting; non-finite values become `null`.

use crate::report::RunReport;
use radar_obs::{BarrierCause, LaneProfile, Log2Histogram, ProtocolHealth, ShardProfile, SpanKind};

/// A JSON document: the minimal tree the report emitter needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values print as `null`).
    Num(f64),
    /// An unsigned integer, printed without a decimal point.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders with two-space indentation (serde_json "pretty" layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(v) => out.push_str(&format!("{v}")),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn uint(v: u64) -> Json {
    Json::UInt(v)
}

fn summary(s: &radar_stats::Summary) -> Json {
    Json::Obj(vec![
        ("count".into(), uint(s.count)),
        ("mean".into(), num(s.mean)),
        ("std_dev".into(), num(s.std_dev)),
        ("min".into(), num(s.min)),
        ("max".into(), num(s.max)),
    ])
}

fn timeseries(ts: &radar_stats::TimeSeries) -> Json {
    Json::Obj(vec![
        ("bin_width".into(), num(ts.spec().width())),
        (
            "sums".into(),
            Json::Arr(ts.sums().iter().map(|&v| num(v)).collect()),
        ),
        (
            "counts".into(),
            Json::Arr(ts.counts().iter().map(|&c| uint(c)).collect()),
        ),
    ])
}

fn histogram_json(h: &Log2Histogram) -> Json {
    // Trailing zero buckets are trimmed; `radar perf` re-pads.
    let buckets = h.buckets();
    let last = buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    Json::Obj(vec![
        ("count".into(), uint(h.count())),
        ("sum".into(), uint(h.sum())),
        ("max".into(), uint(h.max())),
        (
            "buckets".into(),
            Json::Arr(buckets[..last].iter().map(|&c| uint(c)).collect()),
        ),
    ])
}

fn lane_json(label: &str, lane: &LaneProfile) -> Json {
    Json::Obj(vec![
        ("lane".into(), Json::Str(label.to_string())),
        (
            "spans_ns".into(),
            Json::Obj(
                SpanKind::ALL
                    .iter()
                    .map(|&k| (k.as_str().to_string(), uint(lane.span_ns(k))))
                    .collect(),
            ),
        ),
        ("items".into(), uint(lane.items)),
        ("cache_hits".into(), uint(lane.cache_hits)),
        ("cache_misses".into(), uint(lane.cache_misses)),
    ])
}

/// Serializes a [`ShardProfile`] as the `shard_profile` report section
/// (also reused verbatim by the throughput bench's `BENCH_profile.json`
/// artifact, which is why it is public).
pub fn shard_profile_json(p: &ShardProfile) -> Json {
    Json::Obj(vec![
        ("shards".into(), uint(p.shards as u64)),
        ("wall_ns".into(), uint(p.wall_ns)),
        (
            "lanes".into(),
            Json::Arr(
                p.lanes()
                    .map(|(label, lane)| lane_json(&label, lane))
                    .collect(),
            ),
        ),
        ("handoff_ns".into(), histogram_json(&p.handoff_ns)),
        ("batch_items".into(), histogram_json(&p.batch_items)),
        (
            "barriers".into(),
            Json::Obj(
                BarrierCause::ALL
                    .iter()
                    .map(|&c| (c.as_str().to_string(), uint(p.barriers[c as usize])))
                    .collect(),
            ),
        ),
    ])
}

/// Serializes a [`ProtocolHealth`] snapshot as the `protocol_health`
/// report section (also reused by the check-suite's deterministic
/// `BENCH_protocol_health.json` artifact, which is why it is public).
pub fn protocol_health_json(h: &ProtocolHealth) -> Json {
    Json::Obj(vec![
        ("events_seen".into(), uint(h.events_seen)),
        ("active_replicas".into(), uint(h.active_replicas)),
        ("requests".into(), uint(h.requests)),
        ("served".into(), uint(h.served)),
        ("relocations".into(), uint(h.relocations)),
        ("bytes_moved".into(), uint(h.bytes_moved)),
        ("bytes_per_served".into(), num(h.bytes_per_served())),
        ("churn_window".into(), num(h.churn_window)),
        ("ping_pong".into(), uint(h.ping_pong)),
        ("replicate_drop".into(), uint(h.replicate_drop)),
        ("violations".into(), uint(h.violations)),
        (
            "violation_seqs".into(),
            Json::Arr(h.violation_seqs.iter().map(|&s| uint(s)).collect()),
        ),
        (
            "top_objects".into(),
            Json::Arr(
                h.top_objects
                    .iter()
                    .map(|&(object, c)| {
                        Json::Obj(vec![
                            ("object".into(), uint(object as u64)),
                            ("requests".into(), uint(c.requests)),
                            ("served".into(), uint(c.served)),
                            ("relocations".into(), uint(c.relocations)),
                            ("bytes_moved".into(), uint(c.bytes_moved)),
                            ("ping_pong".into(), uint(c.ping_pong)),
                            ("replicate_drop".into(), uint(c.replicate_drop)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl RunReport {
    /// Serializes the full report as pretty-printed JSON.
    ///
    /// The layout is stable: object keys follow the struct's field order,
    /// so two runs with identical results produce byte-identical output.
    pub fn to_json_pretty(&self) -> String {
        let mut fields: Vec<(String, Json)> = vec![
            ("workload".into(), Json::Str(self.workload.clone())),
            ("policy".into(), Json::Str(self.policy.clone())),
            (
                "placement_policy".into(),
                Json::Str(self.placement_policy.clone()),
            ),
            (
                "dynamic_placement".into(),
                Json::Bool(self.dynamic_placement),
            ),
            ("duration".into(), num(self.duration)),
            ("total_requests".into(), uint(self.total_requests)),
            ("failed_requests".into(), uint(self.failed_requests)),
            ("primary_fallbacks".into(), uint(self.primary_fallbacks)),
            ("availability".into(), num(self.availability())),
            (
                "unavailable_object_seconds".into(),
                num(self.unavailable_object_seconds),
            ),
            ("re_replications".into(), uint(self.re_replications)),
            ("restore_time".into(), summary(&self.restore_time)),
            ("faults_injected".into(), uint(self.faults_injected)),
            ("latency".into(), summary(&self.latency)),
            ("latency_p50".into(), num(self.latency_p50)),
            ("latency_p99".into(), num(self.latency_p99)),
            (
                "client_bandwidth".into(),
                timeseries(&self.client_bandwidth),
            ),
            (
                "overhead_bandwidth".into(),
                timeseries(&self.overhead_bandwidth),
            ),
            (
                "update_bandwidth".into(),
                timeseries(&self.update_bandwidth),
            ),
            ("latency_series".into(), timeseries(&self.latency_series)),
            ("max_load".into(), timeseries(&self.max_load)),
            (
                "load_estimates".into(),
                Json::Arr(
                    self.load_estimates
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("t".into(), num(s.t)),
                                ("actual".into(), num(s.actual)),
                                ("upper".into(), num(s.upper)),
                                ("lower".into(), num(s.lower)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "replica_series".into(),
                Json::Arr(
                    self.replica_series
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("t".into(), num(c.t)),
                                ("avg_replicas".into(), num(c.avg_replicas)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("geo_migrations".into(), uint(self.geo_migrations)),
            ("geo_replications".into(), uint(self.geo_replications)),
            ("offload_migrations".into(), uint(self.offload_migrations)),
            (
                "offload_replications".into(),
                uint(self.offload_replications),
            ),
            ("drops".into(), uint(self.drops)),
            ("affinity_reductions".into(), uint(self.affinity_reductions)),
            (
                "final_replicas".into(),
                Json::Arr(
                    self.final_replicas
                        .iter()
                        .map(|replicas| {
                            Json::Arr(
                                replicas
                                    .iter()
                                    .map(|&(node, aff)| {
                                        Json::Arr(vec![uint(node as u64), uint(aff as u64)])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "relocation_log".into(),
                Json::Arr(
                    self.relocation_log
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("t".into(), num(e.t)),
                                ("host".into(), uint(e.host as u64)),
                                ("object".into(), uint(e.object as u64)),
                                (
                                    "target".into(),
                                    e.target.map(|n| uint(n as u64)).unwrap_or(Json::Null),
                                ),
                                ("action".into(), Json::Str(format!("{:?}", e.action))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "max_load_host".into(),
                Json::Arr(
                    self.max_load_host
                        .iter()
                        .map(|&(t, host, load)| {
                            Json::Arr(vec![num(t), uint(host as u64), num(load)])
                        })
                        .collect(),
                ),
            ),
            (
                "trace".into(),
                match &self.trace {
                    None => Json::Null,
                    Some(trace) => Json::Arr(
                        trace
                            .entries()
                            .iter()
                            .map(|e| {
                                Json::Arr(vec![
                                    num(e.t),
                                    uint(e.gateway as u64),
                                    uint(e.object as u64),
                                ])
                            })
                            .collect(),
                    ),
                },
            ),
            (
                "redirector_requests".into(),
                Json::Obj(
                    self.redirector_requests
                        .iter()
                        .map(|(&node, &count)| (node.to_string(), uint(count)))
                        .collect(),
                ),
            ),
            (
                "link_traffic".into(),
                Json::Arr(
                    self.link_traffic
                        .iter()
                        .map(|&((a, b), bytes)| {
                            Json::Arr(vec![uint(a as u64), uint(b as u64), num(bytes)])
                        })
                        .collect(),
                ),
            ),
            (
                "region_matrix".into(),
                Json::Arr(
                    self.region_matrix
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|&v| num(v)).collect()))
                        .collect(),
                ),
            ),
            ("redirect_delay".into(), summary(&self.redirect_delay)),
            ("queueing_delay".into(), summary(&self.queueing_delay)),
            ("response_travel".into(), summary(&self.response_travel)),
            ("updates_propagated".into(), uint(self.updates_propagated)),
            (
                "updates_by_class".into(),
                Json::Arr(self.updates_by_class.iter().map(|&c| uint(c)).collect()),
            ),
            ("update_deliveries".into(), uint(self.update_deliveries)),
            ("wasted_deliveries".into(), uint(self.wasted_deliveries)),
            ("updates_merged".into(), uint(self.updates_merged)),
            ("update_lag_type1".into(), summary(&self.update_lag_type1)),
            ("update_lag_type2".into(), summary(&self.update_lag_type2)),
        ];
        fields.push((
            "primary_reassignments".into(),
            uint(self.primary_reassignments),
        ));
        // Wall-clock-bearing and only present when profiling was
        // explicitly enabled: unprofiled reports stay byte-identical,
        // which the sharded-equivalence suite and the CLI report diff
        // in check.sh both rely on.
        if let Some(profile) = &self.shard_profile {
            fields.push(("shard_profile".into(), shard_profile_json(profile)));
        }
        // Same opt-in rule: only ledger-enabled runs carry the section.
        if let Some(health) = &self.protocol_health {
            fields.push(("protocol_health".into(), protocol_health_json(health)));
        }
        Json::Obj(fields).pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_layout() {
        let doc = Json::Obj(vec![
            ("a\"b".into(), Json::Str("x\ny".into())),
            ("n".into(), Json::Num(1.5)),
            ("i".into(), Json::UInt(7)),
            ("z".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = doc.pretty();
        assert!(s.contains("\"a\\\"b\": \"x\\ny\""));
        assert!(s.contains("\"n\": 1.5"));
        assert!(s.contains("\"i\": 7"));
        assert!(s.contains("\"empty\": []"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }
}
