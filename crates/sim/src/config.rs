//! Simulation scenarios: the paper's Table 1 in executable form.

use std::fmt;

use radar_core::{Catalog, Params};
use radar_simnet::Topology;

use crate::faults::{FaultError, FaultSpec};

/// Network cost model (paper Table 1): per-hop propagation delay and
/// per-link bandwidth. A response of `size` bytes crossing `h` hops takes
/// `h × (delay + size / bandwidth)` seconds (store-and-forward) and
/// consumes `size × h` bytes of backbone bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Propagation delay per hop, seconds (paper: 10 ms).
    pub hop_delay: f64,
    /// Link bandwidth, bytes/second (paper: 350 KBps).
    pub link_bandwidth: f64,
}

impl NetworkParams {
    /// The paper's values: 10 ms per hop, 350 KBps links.
    pub fn paper() -> Self {
        Self {
            hop_delay: 0.010,
            link_bandwidth: 350_000.0,
        }
    }

    /// Time for `bytes` to traverse `hops` hops, store-and-forward.
    pub fn transfer_time(&self, bytes: u64, hops: u32) -> f64 {
        hops as f64 * (self.hop_delay + bytes as f64 / self.link_bandwidth)
    }

    /// Propagation-only time across `hops` hops (for negligible-size
    /// control messages).
    pub fn propagation_time(&self, hops: u32) -> f64 {
        hops as f64 * self.hop_delay
    }
}

impl Default for NetworkParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Whether the dynamic placement algorithm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementMode {
    /// RaDaR's placement algorithm runs every placement period.
    Dynamic,
    /// No placement decisions: replicas stay wherever
    /// [`InitialPlacement`] put them (the static baseline — the paper's
    /// "before adjustment" configuration held for the whole run).
    Static,
}

/// Where objects start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitialPlacement {
    /// Object `i` on node `i mod n` — the paper's initial configuration.
    RoundRobin,
    /// Every object on every node (the replicate-everywhere baseline the
    /// paper argues against in §4: needless replicas attract distant
    /// requests).
    Everywhere,
    /// Explicit placement: `assignments[i]` lists the nodes hosting
    /// object `i`. Each inner list must be non-empty.
    Explicit(Vec<Vec<u16>>),
}

/// Errors from scenario validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A field that must be strictly positive and finite was not.
    NonPositive {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// No objects configured.
    NoObjects,
    /// Explicit placement list has the wrong length or an empty entry.
    BadExplicitPlacement {
        /// Explanation.
        detail: String,
    },
    /// A custom catalog does not describe exactly `num_objects` objects.
    CatalogMismatch {
        /// Objects in the catalog.
        catalog: usize,
        /// Objects in the scenario.
        scenario: u32,
    },
    /// Protocol parameter constraint violation.
    Params(radar_core::ParamsError),
    /// The fault schedule is invalid for this topology.
    Faults(FaultError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NonPositive { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ScenarioError::NoObjects => f.write_str("scenario needs at least one object"),
            ScenarioError::BadExplicitPlacement { detail } => {
                write!(f, "bad explicit placement: {detail}")
            }
            ScenarioError::CatalogMismatch { catalog, scenario } => write!(
                f,
                "catalog describes {catalog} objects but the scenario has {scenario}"
            ),
            ScenarioError::Params(e) => write!(f, "invalid protocol parameters: {e}"),
            ScenarioError::Faults(e) => write!(f, "invalid fault schedule: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Params(e) => Some(e),
            ScenarioError::Faults(e) => Some(e),
            _ => None,
        }
    }
}

impl From<radar_core::ParamsError> for ScenarioError {
    fn from(e: radar_core::ParamsError) -> Self {
        ScenarioError::Params(e)
    }
}

impl From<FaultError> for ScenarioError {
    fn from(e: FaultError) -> Self {
        ScenarioError::Faults(e)
    }
}

/// A complete simulation scenario: topology, workload-independent
/// parameters, and measurement settings. Build with [`Scenario::builder`].
///
/// Defaults reproduce the paper's Table 1 on the 53-node UUNET testbed:
/// 10 000 objects of 12 KB, 40 req/s per gateway, 200 req/s server
/// capacity, 10 ms hops, 350 KBps links, dynamic placement every 100 s.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The backbone topology (default: [`radar_simnet::builders::uunet`]).
    pub topology: Topology,
    /// Number of hosted objects.
    pub num_objects: u32,
    /// Object size in bytes.
    pub object_size: u64,
    /// Request rate per gateway node, requests/second.
    pub node_request_rate: f64,
    /// Optional per-gateway request rates overriding `node_request_rate`
    /// (one entry per node). Used for locally concentrated demand
    /// scenarios such as the paper's §3 swamped-server example.
    pub node_request_rates: Option<Vec<f64>>,
    /// Server capacity, requests/second (service time = 1/capacity).
    pub server_capacity: f64,
    /// Optional per-node capacities overriding `server_capacity` (one
    /// entry per node). Watermarks scale with each host's relative power
    /// — the paper's §2 heterogeneity extension ("weights corresponding
    /// to relative power of hosts").
    pub node_capacities: Option<Vec<f64>>,
    /// Network cost model.
    pub network: NetworkParams,
    /// Protocol parameters (watermarks, thresholds, periods).
    pub params: Params,
    /// Placement mode (dynamic protocol vs. static baseline).
    pub placement: PlacementMode,
    /// Initial object placement.
    pub initial_placement: InitialPlacement,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// RNG seed; every run is a pure function of (scenario, workload,
    /// seed).
    pub seed: u64,
    /// Width of metric time bins in seconds (default: the placement
    /// period).
    pub metric_bin: f64,
    /// Use Poisson arrivals instead of the paper's constant rate.
    pub poisson_arrivals: bool,
    /// Node whose load estimates are tracked for Fig. 8b (default 0).
    pub tracked_host: u16,
    /// Object catalog (sizes/kinds/primaries). `None` = uniform immutable
    /// objects of `object_size` bytes, primaries round-robin (paper §6.1).
    pub catalog: Option<Catalog>,
    /// Per-host storage limit in *objects* (`None` = unbounded, the
    /// paper's evaluation setting). A full host refuses new physical
    /// copies — the §2.1 storage-load component's admission effect.
    pub storage_limit: Option<u32>,
    /// Number of redirectors the URL namespace is hash-partitioned over
    /// (paper §2: "the load is divided among multiple redirectors by
    /// hash-partitioning the URL namespace"). They are placed at the
    /// most central nodes. Default 1, matching the paper's simulation.
    pub num_redirectors: u16,
    /// Mean provider-update rate across the whole object population
    /// (updates/second, Poisson; uniformly random object). Each update
    /// is propagated asynchronously from the primary copy to every
    /// replica (paper §5), consuming update-propagation bandwidth.
    /// 0 = no updates (the paper's evaluation setting).
    pub update_rate: f64,
    /// Scheduled faults (host crashes, link partitions, degradations)
    /// plus the recovery-policy knobs. Empty by default — a fault-free
    /// run is bit-identical to one built before fault injection existed.
    pub faults: FaultSpec,
}

impl Scenario {
    /// Starts building a scenario with the paper's defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Number of nodes in the topology.
    pub fn num_nodes(&self) -> u16 {
        self.topology.len() as u16
    }

    /// Capacity of node `i` (per-node override or the uniform value).
    pub fn capacity_of(&self, i: usize) -> f64 {
        self.node_capacities
            .as_ref()
            .map_or(self.server_capacity, |caps| caps[i])
    }

    /// Protocol parameters for node `i`: watermarks scaled by the host's
    /// relative power `capacity_i / server_capacity` (the paper's §2
    /// heterogeneity weights). Thresholds and periods are unscaled — they
    /// are per-object demand properties, not host properties.
    pub fn params_of(&self, i: usize) -> Params {
        let weight = self.capacity_of(i) / self.server_capacity;
        Params {
            low_watermark: self.params.low_watermark * weight,
            high_watermark: self.params.high_watermark * weight,
            ..self.params
        }
    }
}

/// Builder for [`Scenario`]; see [`Scenario::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    topology: Option<Topology>,
    num_objects: u32,
    object_size: u64,
    node_request_rate: f64,
    node_request_rates: Option<Vec<f64>>,
    server_capacity: f64,
    node_capacities: Option<Vec<f64>>,
    network: NetworkParams,
    params: Params,
    placement: PlacementMode,
    initial_placement: InitialPlacement,
    duration: f64,
    seed: u64,
    metric_bin: Option<f64>,
    poisson_arrivals: bool,
    tracked_host: u16,
    catalog: Option<Catalog>,
    storage_limit: Option<u32>,
    num_redirectors: u16,
    update_rate: f64,
    faults: FaultSpec,
}

impl ScenarioBuilder {
    /// Paper defaults (Table 1).
    pub fn new() -> Self {
        Self {
            topology: None,
            num_objects: 10_000,
            object_size: 12 * 1024,
            node_request_rate: 40.0,
            node_request_rates: None,
            server_capacity: 200.0,
            node_capacities: None,
            network: NetworkParams::paper(),
            params: Params::paper(),
            placement: PlacementMode::Dynamic,
            initial_placement: InitialPlacement::RoundRobin,
            duration: 3_000.0,
            seed: 1,
            metric_bin: None,
            poisson_arrivals: false,
            tracked_host: 0,
            catalog: None,
            storage_limit: None,
            num_redirectors: 1,
            update_rate: 0.0,
            faults: FaultSpec::new(),
        }
    }

    /// Sets the topology (default: the 53-node UUNET testbed).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the number of objects.
    pub fn num_objects(mut self, n: u32) -> Self {
        self.num_objects = n;
        self
    }

    /// Sets the object size in bytes.
    pub fn object_size(mut self, bytes: u64) -> Self {
        self.object_size = bytes;
        self
    }

    /// Sets the per-gateway request rate (requests/second).
    pub fn node_request_rate(mut self, rate: f64) -> Self {
        self.node_request_rate = rate;
        self
    }

    /// Sets individual per-gateway request rates (one entry per node,
    /// all strictly positive), overriding the uniform rate.
    pub fn node_request_rates(mut self, rates: Vec<f64>) -> Self {
        self.node_request_rates = Some(rates);
        self
    }

    /// Sets the server capacity (requests/second).
    pub fn server_capacity(mut self, rate: f64) -> Self {
        self.server_capacity = rate;
        self
    }

    /// Sets individual per-node capacities (one strictly positive entry
    /// per node). Each host's watermarks scale with its relative power.
    pub fn node_capacities(mut self, capacities: Vec<f64>) -> Self {
        self.node_capacities = Some(capacities);
        self
    }

    /// Sets the network cost model.
    pub fn network(mut self, network: NetworkParams) -> Self {
        self.network = network;
        self
    }

    /// Sets the protocol parameters.
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Sets the placement mode.
    pub fn placement(mut self, mode: PlacementMode) -> Self {
        self.placement = mode;
        self
    }

    /// Sets the initial placement.
    pub fn initial_placement(mut self, p: InitialPlacement) -> Self {
        self.initial_placement = p;
        self
    }

    /// Sets the simulated duration (seconds).
    pub fn duration(mut self, secs: f64) -> Self {
        self.duration = secs;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the metric bin width (seconds). Default: the placement period.
    pub fn metric_bin(mut self, secs: f64) -> Self {
        self.metric_bin = Some(secs);
        self
    }

    /// Switches arrivals to Poisson.
    pub fn poisson_arrivals(mut self, poisson: bool) -> Self {
        self.poisson_arrivals = poisson;
        self
    }

    /// Sets the node tracked for Fig. 8b load-estimate series.
    pub fn tracked_host(mut self, node: u16) -> Self {
        self.tracked_host = node;
        self
    }

    /// Provides a custom object catalog (consistency kinds / replica
    /// caps, paper §5). Must describe exactly `num_objects` objects.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Limits every host to at most `max_objects` distinct objects.
    pub fn storage_limit(mut self, max_objects: u32) -> Self {
        self.storage_limit = Some(max_objects);
        self
    }

    /// Hash-partitions the URL namespace over `n ≥ 1` redirectors placed
    /// at the most central nodes.
    pub fn num_redirectors(mut self, n: u16) -> Self {
        self.num_redirectors = n;
        self
    }

    /// Sets the aggregate provider-update rate (updates/second over the
    /// whole object population; 0 disables updates).
    pub fn update_rate(mut self, rate: f64) -> Self {
        self.update_rate = rate;
        self
    }

    /// Installs a fault schedule (host crashes, link partitions, link
    /// degradations). Validated against the topology at build time.
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on non-positive rates/durations, an
    /// empty object space, or malformed explicit placement.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        if self.num_objects == 0 {
            return Err(ScenarioError::NoObjects);
        }
        let positives = [
            ("node_request_rate", self.node_request_rate),
            ("server_capacity", self.server_capacity),
            ("duration", self.duration),
            ("hop_delay", self.network.hop_delay),
            ("link_bandwidth", self.network.link_bandwidth),
            ("object_size", self.object_size as f64),
        ];
        for (field, value) in positives {
            if !(value.is_finite() && value > 0.0) {
                return Err(ScenarioError::NonPositive { field, value });
            }
        }
        let topology = self.topology.unwrap_or_else(radar_simnet::builders::uunet);
        if let InitialPlacement::Explicit(assignments) = &self.initial_placement {
            if assignments.len() != self.num_objects as usize {
                return Err(ScenarioError::BadExplicitPlacement {
                    detail: format!(
                        "{} assignment lists for {} objects",
                        assignments.len(),
                        self.num_objects
                    ),
                });
            }
            for (i, hosts) in assignments.iter().enumerate() {
                if hosts.is_empty() {
                    return Err(ScenarioError::BadExplicitPlacement {
                        detail: format!("object {i} has no hosts"),
                    });
                }
                if let Some(&bad) = hosts.iter().find(|&&h| h as usize >= topology.len()) {
                    return Err(ScenarioError::BadExplicitPlacement {
                        detail: format!("object {i} assigned to unknown node {bad}"),
                    });
                }
            }
        }
        if let Some(limit) = self.storage_limit {
            if limit == 0 {
                return Err(ScenarioError::NonPositive {
                    field: "storage_limit",
                    value: 0.0,
                });
            }
        }
        if self.num_redirectors == 0 {
            return Err(ScenarioError::NonPositive {
                field: "num_redirectors",
                value: 0.0,
            });
        }
        if !(self.update_rate.is_finite() && self.update_rate >= 0.0) {
            return Err(ScenarioError::NonPositive {
                field: "update_rate",
                value: self.update_rate,
            });
        }
        if let Some(caps) = &self.node_capacities {
            if caps.len() != topology.len() {
                return Err(ScenarioError::BadExplicitPlacement {
                    detail: format!(
                        "{} per-node capacities for {} nodes",
                        caps.len(),
                        topology.len()
                    ),
                });
            }
            if let Some(&bad) = caps.iter().find(|c| !(c.is_finite() && **c > 0.0)) {
                return Err(ScenarioError::NonPositive {
                    field: "node_capacities",
                    value: bad,
                });
            }
        }
        if let Some(rates) = &self.node_request_rates {
            if rates.len() != topology.len() {
                return Err(ScenarioError::BadExplicitPlacement {
                    detail: format!(
                        "{} per-node rates for {} nodes",
                        rates.len(),
                        topology.len()
                    ),
                });
            }
            for (i, &r) in rates.iter().enumerate() {
                if !(r.is_finite() && r > 0.0) {
                    return Err(ScenarioError::NonPositive {
                        field: "node_request_rates",
                        value: r,
                    });
                }
                let _ = i;
            }
        }
        if let Some(catalog) = &self.catalog {
            if catalog.len() != self.num_objects as usize {
                return Err(ScenarioError::CatalogMismatch {
                    catalog: catalog.len(),
                    scenario: self.num_objects,
                });
            }
        }
        let links: Vec<(u16, u16)> = topology
            .links()
            .iter()
            .map(|&(a, b)| (a.index() as u16, b.index() as u16))
            .collect();
        self.faults.validate(topology.len(), &links)?;
        let tracked_host = self.tracked_host.min(topology.len() as u16 - 1);
        let num_redirectors = self.num_redirectors.min(topology.len() as u16);
        let metric_bin = match self.metric_bin {
            Some(b) if !(b.is_finite() && b > 0.0) => {
                return Err(ScenarioError::NonPositive {
                    field: "metric_bin",
                    value: b,
                })
            }
            Some(b) => b,
            None => self.params.placement_period,
        };
        Ok(Scenario {
            topology,
            num_objects: self.num_objects,
            object_size: self.object_size,
            node_request_rate: self.node_request_rate,
            node_request_rates: self.node_request_rates,
            server_capacity: self.server_capacity,
            node_capacities: self.node_capacities,
            network: self.network,
            params: self.params,
            placement: self.placement,
            initial_placement: self.initial_placement,
            duration: self.duration,
            seed: self.seed,
            metric_bin,
            poisson_arrivals: self.poisson_arrivals,
            tracked_host,
            catalog: self.catalog,
            storage_limit: self.storage_limit,
            num_redirectors,
            update_rate: self.update_rate,
            faults: self.faults,
        })
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let s = Scenario::builder().build().unwrap();
        assert_eq!(s.num_objects, 10_000);
        assert_eq!(s.object_size, 12 * 1024);
        assert_eq!(s.node_request_rate, 40.0);
        assert_eq!(s.server_capacity, 200.0);
        assert_eq!(s.network.hop_delay, 0.010);
        assert_eq!(s.network.link_bandwidth, 350_000.0);
        assert_eq!(s.num_nodes(), 53);
        assert_eq!(s.placement, PlacementMode::Dynamic);
        assert_eq!(s.metric_bin, 100.0);
    }

    #[test]
    fn transfer_time_model() {
        let n = NetworkParams::paper();
        // 12 KB over 1 hop: 10 ms + 12288/350000 s ≈ 45.1 ms.
        let t = n.transfer_time(12 * 1024, 1);
        assert!((t - (0.010 + 12288.0 / 350_000.0)).abs() < 1e-12);
        assert_eq!(n.transfer_time(1, 0), 0.0);
        assert_eq!(n.propagation_time(3), 0.030);
    }

    #[test]
    fn zero_objects_rejected() {
        assert_eq!(
            Scenario::builder().num_objects(0).build().unwrap_err(),
            ScenarioError::NoObjects
        );
    }

    #[test]
    fn non_positive_rate_rejected() {
        let err = Scenario::builder()
            .node_request_rate(0.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::NonPositive {
                field: "node_request_rate",
                ..
            }
        ));
    }

    #[test]
    fn explicit_placement_validated() {
        let err = Scenario::builder()
            .num_objects(2)
            .initial_placement(InitialPlacement::Explicit(vec![vec![0]]))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadExplicitPlacement { .. }));

        let err = Scenario::builder()
            .num_objects(1)
            .initial_placement(InitialPlacement::Explicit(vec![vec![]]))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadExplicitPlacement { .. }));

        let err = Scenario::builder()
            .num_objects(1)
            .initial_placement(InitialPlacement::Explicit(vec![vec![200]]))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadExplicitPlacement { .. }));

        let ok = Scenario::builder()
            .num_objects(1)
            .initial_placement(InitialPlacement::Explicit(vec![vec![0, 1]]))
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn storage_limit_validated() {
        assert!(matches!(
            Scenario::builder().storage_limit(0).build().unwrap_err(),
            ScenarioError::NonPositive {
                field: "storage_limit",
                ..
            }
        ));
        let s = Scenario::builder().storage_limit(250).build().unwrap();
        assert_eq!(s.storage_limit, Some(250));
    }

    #[test]
    fn redirector_and_update_knobs_validated() {
        assert!(matches!(
            Scenario::builder().num_redirectors(0).build().unwrap_err(),
            ScenarioError::NonPositive {
                field: "num_redirectors",
                ..
            }
        ));
        assert!(matches!(
            Scenario::builder().update_rate(-1.0).build().unwrap_err(),
            ScenarioError::NonPositive {
                field: "update_rate",
                ..
            }
        ));
        let s = Scenario::builder()
            .num_redirectors(4)
            .update_rate(2.0)
            .build()
            .unwrap();
        assert_eq!(s.num_redirectors, 4);
        assert_eq!(s.update_rate, 2.0);
        // Clamped to the node count.
        let s = Scenario::builder().num_redirectors(500).build().unwrap();
        assert_eq!(s.num_redirectors, 53);
    }

    #[test]
    fn per_node_capacities_scale_watermarks() {
        let mut caps = vec![200.0; 53];
        caps[7] = 400.0;
        let s = Scenario::builder().node_capacities(caps).build().unwrap();
        assert_eq!(s.capacity_of(0), 200.0);
        assert_eq!(s.capacity_of(7), 400.0);
        assert_eq!(s.params_of(0).high_watermark, 90.0);
        assert_eq!(s.params_of(7).high_watermark, 180.0);
        assert_eq!(s.params_of(7).low_watermark, 160.0);
        assert_eq!(s.params_of(7).deletion_threshold, 0.03);
    }

    #[test]
    fn bad_capacities_rejected() {
        let err = Scenario::builder()
            .node_capacities(vec![1.0; 3])
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadExplicitPlacement { .. }));
        let err = Scenario::builder()
            .node_capacities(vec![-1.0; 53])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::NonPositive {
                field: "node_capacities",
                ..
            }
        ));
    }

    #[test]
    fn per_node_rates_validated() {
        let err = Scenario::builder()
            .node_request_rates(vec![1.0; 3])
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadExplicitPlacement { .. }));
        let err = Scenario::builder()
            .node_request_rates(vec![0.0; 53])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::NonPositive {
                field: "node_request_rates",
                ..
            }
        ));
        assert!(Scenario::builder()
            .node_request_rates(vec![2.0; 53])
            .build()
            .is_ok());
    }

    #[test]
    fn catalog_length_validated() {
        let catalog = Catalog::uniform(5, 1024, 2);
        let err = Scenario::builder()
            .num_objects(6)
            .catalog(catalog.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::CatalogMismatch { .. }));
        assert!(Scenario::builder()
            .num_objects(5)
            .catalog(catalog)
            .build()
            .is_ok());
    }

    #[test]
    fn tracked_host_clamped() {
        let s = Scenario::builder().tracked_host(9999).build().unwrap();
        assert_eq!(s.tracked_host, 52);
    }

    #[test]
    fn fault_schedule_validated_against_topology() {
        // Host index past the 53-node UUNET testbed.
        let err = Scenario::builder()
            .faults(FaultSpec::new().host_down(99, 10.0, None))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Faults(FaultError::UnknownHost(99))
        ));
        // Link that is not a UUNET edge.
        let err = Scenario::builder()
            .faults(FaultSpec::new().link_down(0, 52, 10.0, None))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Faults(FaultError::UnknownLink(0, 52))
        ));
        // A valid schedule builds.
        let s = Scenario::builder()
            .faults(FaultSpec::new().host_down(7, 100.0, Some(400.0)))
            .build()
            .unwrap();
        assert_eq!(s.faults.faults().len(), 1);
        // Default is fault-free.
        assert!(Scenario::builder().build().unwrap().faults.is_empty());
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            ScenarioError::NoObjects,
            ScenarioError::NonPositive {
                field: "x",
                value: 0.0,
            },
            ScenarioError::BadExplicitPlacement { detail: "d".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
