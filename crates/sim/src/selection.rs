//! Pluggable replica-selection policies.
//!
//! The protocol's own distribution algorithm is [`RadarSelection`];
//! comparator policies (round-robin, closest-replica) live in the
//! `radar-baselines` crate and implement the same [`SelectionPolicy`]
//! trait, so every policy runs against identical replica bookkeeping.

use radar_core::{ChoiceExplanation, ObjectId, Redirector};
use radar_simnet::{NodeId, RoutingTable};

/// Chooses which replica serves a request. Implementations may keep
/// their own per-object state (e.g. round-robin cursors) but share the
/// platform's [`Redirector`] for replica-set membership.
pub trait SelectionPolicy: Send {
    /// Picks the serving host for a request to `object` entering at
    /// `gateway`, or `None` if the object has no replicas.
    fn choose(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        redirector: &mut Redirector,
        routes: &RoutingTable,
    ) -> Option<NodeId>;

    /// Fault-aware variant: picks a serving host among those passing
    /// `usable` (live and reachable). The platform always routes requests
    /// through this method; on fault-free runs `usable` is constantly
    /// `true` and it behaves exactly like [`choose`](Self::choose).
    ///
    /// The default implementation runs [`choose`](Self::choose) and fails
    /// the request when the pick is unusable — a policy unaware of faults
    /// degrades pessimistically rather than routing to a crashed host.
    /// Policies should override this to re-select among usable replicas
    /// (see [`RadarSelection`]).
    fn choose_available(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        redirector: &mut Redirector,
        routes: &RoutingTable,
        usable: &dyn Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        self.choose(object, gateway, redirector, routes)
            .filter(|&h| usable(h))
    }

    /// [`choose_available`](Self::choose_available) that additionally
    /// returns a [`ChoiceExplanation`] when the policy can produce one —
    /// the flight recorder's entry point. The default implementation
    /// delegates to [`choose_available`](Self::choose_available) with no
    /// explanation (baseline policies have no Fig. 2 data); the platform
    /// only calls this variant when event tracing is on.
    fn choose_available_explained(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        redirector: &mut Redirector,
        routes: &RoutingTable,
        usable: &dyn Fn(NodeId) -> bool,
    ) -> (Option<NodeId>, Option<ChoiceExplanation>) {
        (
            self.choose_available(object, gateway, redirector, routes, usable),
            None,
        )
    }

    /// Policy name for reports.
    fn name(&self) -> &str;

    /// `true` when the policy's decisions are a pure function of the
    /// usable candidate set — i.e. it delegates to the redirector's
    /// Fig. 2 rule — so the platform may route requests through its
    /// candidate-caching redirect engine instead of this trait. Stateful
    /// policies (round-robin cursors, randomized picks) must leave this
    /// `false`.
    fn supports_candidate_cache(&self) -> bool {
        false
    }
}

/// The paper's request distribution algorithm (Fig. 2), delegating to
/// [`Redirector::choose_replica`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RadarSelection;

impl RadarSelection {
    /// Creates the protocol's own selection policy.
    pub fn new() -> Self {
        RadarSelection
    }
}

impl SelectionPolicy for RadarSelection {
    fn choose(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        redirector: &mut Redirector,
        routes: &RoutingTable,
    ) -> Option<NodeId> {
        redirector.choose_replica(object, gateway, routes)
    }

    fn choose_available(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        redirector: &mut Redirector,
        routes: &RoutingTable,
        usable: &dyn Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        redirector.choose_replica_filtered(object, gateway, routes, usable)
    }

    fn choose_available_explained(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        redirector: &mut Redirector,
        routes: &RoutingTable,
        usable: &dyn Fn(NodeId) -> bool,
    ) -> (Option<NodeId>, Option<ChoiceExplanation>) {
        match redirector.choose_replica_explained(object, gateway, routes, usable) {
            Some((host, expl)) => (Some(host), Some(expl)),
            None => (None, None),
        }
    }

    fn name(&self) -> &str {
        "radar"
    }

    fn supports_candidate_cache(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_simnet::builders;

    #[test]
    fn radar_selection_delegates_to_redirector() {
        let topo = builders::two_continents();
        let routes = topo.routes();
        let mut redirector = Redirector::new(1, 2.0);
        redirector.install(ObjectId::new(0), NodeId::new(1));
        let mut policy = RadarSelection::new();
        assert_eq!(policy.name(), "radar");
        assert_eq!(
            policy.choose(ObjectId::new(0), NodeId::new(0), &mut redirector, &routes),
            Some(NodeId::new(1))
        );
        // Request count advanced through the policy.
        assert_eq!(redirector.replicas(ObjectId::new(0))[0].rcnt, 2);
    }

    /// A minimal fault-oblivious policy: always the lowest-id replica.
    struct FirstReplica;

    impl SelectionPolicy for FirstReplica {
        fn choose(
            &mut self,
            object: ObjectId,
            _gateway: NodeId,
            redirector: &mut Redirector,
            _routes: &RoutingTable,
        ) -> Option<NodeId> {
            redirector.replicas(object).first().map(|r| r.host)
        }

        fn name(&self) -> &str {
            "first-replica"
        }
    }

    #[test]
    fn default_choose_available_degrades_pessimistically() {
        // The trait's default `choose_available` runs the fault-oblivious
        // `choose` and then *fails* the request if the pick is unusable —
        // it must not silently re-route to another replica, because a
        // policy that never looks at liveness has no basis for a second
        // choice.
        let topo = builders::line(4);
        let routes = topo.routes();
        let mut redirector = Redirector::new(1, 2.0);
        let x = ObjectId::new(0);
        redirector.install(x, NodeId::new(0));
        redirector.install(x, NodeId::new(3));
        let mut policy = FirstReplica;

        // Fault-free: behaves exactly like `choose`.
        let all_up = |_: NodeId| true;
        assert_eq!(
            policy.choose_available(x, NodeId::new(1), &mut redirector, &routes, &all_up),
            Some(NodeId::new(0))
        );

        // The picked host is down: the request fails even though the
        // replica on node 3 is alive and usable.
        let node0_down = |h: NodeId| h != NodeId::new(0);
        assert_eq!(
            policy.choose_available(x, NodeId::new(1), &mut redirector, &routes, &node0_down),
            None
        );

        // And the default explained variant carries the same pick with
        // no explanation attached.
        let (host, explanation) = policy.choose_available_explained(
            x,
            NodeId::new(1),
            &mut redirector,
            &routes,
            &node0_down,
        );
        assert_eq!(host, None);
        assert!(explanation.is_none());

        // Contrast: the protocol's own policy re-selects among usable
        // replicas instead of failing.
        assert_eq!(
            RadarSelection::new().choose_available(
                x,
                NodeId::new(1),
                &mut redirector,
                &routes,
                &node0_down,
            ),
            Some(NodeId::new(3))
        );
    }
}
