//! The observer fan-out and flight-recorder sequencing shared by every
//! simulation layer.

use radar_obs::{DecisionEvent, EventKind as ObsEventKind};

use crate::observer::Observer;

/// The platform's observer fan-out plus the flight-recorder sequence
/// counter. Kept as one separable struct so the placement environment
/// can emit events while the rest of the simulation is mutably
/// borrowed.
pub(crate) struct EventSink {
    pub(crate) observers: Vec<Box<dyn Observer>>,
    /// Monotonic flight-recorder sequence. Numbers are 1-based so that
    /// 0 can double as "no causal parent" in scheduled events.
    pub(crate) next_seq: u64,
    /// True when at least one attached observer wants the typed event
    /// feed; with no recorder attached, emission sites pay one branch.
    pub(crate) tracing: bool,
    /// Reusable decision payload: its candidate vector survives across
    /// redirects, so tracing the hottest event type allocates nothing
    /// once the vector reaches the platform's widest replica set.
    decision_scratch: DecisionEvent,
}

impl EventSink {
    pub(crate) fn new() -> Self {
        EventSink {
            observers: Vec::new(),
            next_seq: 0,
            tracing: false,
            decision_scratch: DecisionEvent::default(),
        }
    }

    /// Emits one flight-recorder event to every subscribed observer and
    /// returns its sequence number — or 0 without side effects when
    /// tracing is off. `cause` is the parent's sequence number (0 for
    /// none). Callers should guard [`radar_obs::EventKind`]
    /// construction behind [`tracing`](Self::tracing) so the disabled
    /// path allocates nothing.
    pub(crate) fn emit(&mut self, t: f64, queue_depth: u32, cause: u64, kind: ObsEventKind) -> u64 {
        if !self.tracing {
            return 0;
        }
        self.next_seq += 1;
        let event = radar_obs::Event {
            seq: self.next_seq,
            parent: (cause != 0).then_some(cause),
            t,
            queue_depth,
            kind,
        };
        for obs in &mut self.observers {
            if obs.wants_events() {
                obs.on_event(&event);
            }
        }
        self.next_seq
    }

    /// Emits one [`ObsEventKind::Decision`] without constructing the
    /// payload at the call site: `fill` receives the sink's scratch
    /// decision — candidate vector cleared but capacity kept — and the
    /// finished event is lent to the observers, then reclaimed so the
    /// next redirect reuses the same buffers. Returns the sequence
    /// number, or 0 without calling `fill` when tracing is off.
    pub(crate) fn emit_decision(
        &mut self,
        t: f64,
        queue_depth: u32,
        cause: u64,
        fill: impl FnOnce(&mut DecisionEvent),
    ) -> u64 {
        if !self.tracing {
            return 0;
        }
        let mut decision = std::mem::take(&mut self.decision_scratch);
        decision.candidates.clear();
        fill(&mut decision);
        self.next_seq += 1;
        let event = radar_obs::Event {
            seq: self.next_seq,
            parent: (cause != 0).then_some(cause),
            t,
            queue_depth,
            kind: ObsEventKind::Decision(decision),
        };
        for obs in &mut self.observers {
            if obs.wants_events() {
                obs.on_event(&event);
            }
        }
        let ObsEventKind::Decision(decision) = event.kind else {
            unreachable!("constructed as a decision above");
        };
        self.decision_scratch = decision;
        self.next_seq
    }
}
