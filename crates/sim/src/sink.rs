//! The observer fan-out and flight-recorder sequencing shared by every
//! simulation layer.

use radar_obs::{
    DecisionEvent, Event, EventKind as ObsEventKind, EventReorderBuffer, ReorderStats,
};

use crate::observer::Observer;

/// The platform's observer fan-out plus the flight-recorder sequence
/// counter. Kept as one separable struct so the placement environment
/// can emit events while the rest of the simulation is mutably
/// borrowed.
///
/// In the sharded event loop (`Simulation::run_sharded`), sequence
/// numbers for deferred redirect decisions are reserved up front via
/// [`reserve_seqs`](Self::reserve_seqs) and filled in later with
/// [`emit_reserved_decision`](Self::emit_reserved_decision). While that
/// mode is active ([`enable_reorder`](Self::enable_reorder)), every
/// emission passes through an [`EventReorderBuffer`] so observers still
/// see the stream in strict sequence order — byte-identical to a serial
/// run.
pub(crate) struct EventSink {
    pub(crate) observers: Vec<Box<dyn Observer>>,
    /// Monotonic flight-recorder sequence. Numbers are 1-based so that
    /// 0 can double as "no causal parent" in scheduled events.
    pub(crate) next_seq: u64,
    /// True when at least one attached observer wants the typed event
    /// feed; with no recorder attached, emission sites pay one branch.
    pub(crate) tracing: bool,
    /// Reusable decision payload: its candidate vector survives across
    /// redirects, so tracing the hottest event type allocates nothing
    /// once the vector reaches the platform's widest replica set.
    decision_scratch: DecisionEvent,
    /// Present while the sharded loop runs: holds back emissions that
    /// complete ahead of a still-reserved predecessor.
    reorder: Option<EventReorderBuffer>,
    /// Total sequence numbers reserved via [`reserve_seq`](Self::reserve_seq).
    reserved_total: u64,
    /// Reserved sequence numbers not yet filled in.
    reserved_outstanding: u64,
    /// High-water mark of `reserved_outstanding`.
    reserved_peak: u64,
}

impl EventSink {
    pub(crate) fn new() -> Self {
        EventSink {
            observers: Vec::new(),
            next_seq: 0,
            tracing: false,
            decision_scratch: DecisionEvent::default(),
            reorder: None,
            reserved_total: 0,
            reserved_outstanding: 0,
            reserved_peak: 0,
        }
    }

    /// Switches the sink into reorder mode for the sharded loop. Must be
    /// called before the first emission (the reorder buffer starts at
    /// sequence 1).
    pub(crate) fn enable_reorder(&mut self) {
        assert_eq!(self.next_seq, 0, "reorder mode must start before emission");
        self.reorder = Some(EventReorderBuffer::new());
    }

    /// `true` when no emission is held back waiting on a reserved
    /// predecessor (trivially true outside reorder mode). The sharded
    /// loop asserts this at every epoch barrier and at shutdown.
    pub(crate) fn reorder_drained(&self) -> bool {
        self.reorder.as_ref().is_none_or(|buf| buf.is_empty())
    }

    /// Claims `count` consecutive sequence numbers at once — without
    /// emitting anything — and returns the first. The caller must
    /// eventually emit exactly one event per claimed number (see
    /// [`emit_reserved_decision`](Self::emit_reserved_decision)), or
    /// reorder mode will hold back every later emission forever. The
    /// block is exact for a batched defer run in the sharded loop: a
    /// whole run of redirects is reserved before any handler gets a
    /// chance to emit, so the numbers a serial loop would hand out
    /// per-item are precisely consecutive. Reservations are tallied for
    /// the `{"type":"reorder",…}` log trailer of a sharded run.
    pub(crate) fn reserve_seqs(&mut self, count: u64) -> u64 {
        self.reserved_total += count;
        self.reserved_outstanding += count;
        self.reserved_peak = self.reserved_peak.max(self.reserved_outstanding);
        let first = self.next_seq + 1;
        self.next_seq += count;
        first
    }

    /// Advances and returns the sequence counter (internal emissions —
    /// these never sit outstanding, so they stay out of the reserve
    /// tallies).
    fn next(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Reorder-machinery statistics of a sharded run: reservation
    /// tallies from this sink plus buffer high-water marks. `None`
    /// outside reorder mode — serial runs write no trailer.
    pub(crate) fn reorder_stats(&self) -> Option<ReorderStats> {
        self.reorder.as_ref().map(|buf| ReorderStats {
            reserved: self.reserved_total,
            max_in_flight: self.reserved_peak,
            max_held: buf.max_held() as u64,
            drains: buf.drains(),
        })
    }

    /// Fans one finished event out to subscribed observers, routing
    /// through the reorder buffer when reserved sequence numbers may
    /// still be outstanding.
    fn deliver(&mut self, event: Event) {
        if let Some(buf) = &mut self.reorder {
            buf.push(event);
            while let Some(ready) = buf.pop_ready() {
                for obs in &mut self.observers {
                    if obs.wants_events() {
                        obs.on_event(&ready);
                    }
                }
            }
        } else {
            for obs in &mut self.observers {
                if obs.wants_events() {
                    obs.on_event(&event);
                }
            }
        }
    }

    /// Emits one flight-recorder event to every subscribed observer and
    /// returns its sequence number — or 0 without side effects when
    /// tracing is off. `cause` is the parent's sequence number (0 for
    /// none). Callers should guard [`radar_obs::EventKind`]
    /// construction behind [`tracing`](Self::tracing) so the disabled
    /// path allocates nothing.
    pub(crate) fn emit(&mut self, t: f64, queue_depth: u32, cause: u64, kind: ObsEventKind) -> u64 {
        if !self.tracing {
            return 0;
        }
        let seq = self.next();
        self.deliver(Event {
            seq,
            parent: (cause != 0).then_some(cause),
            t,
            queue_depth,
            kind,
        });
        seq
    }

    /// Emits one [`ObsEventKind::Decision`] without constructing the
    /// payload at the call site: `fill` receives the sink's scratch
    /// decision — candidate vector cleared but capacity kept — and the
    /// finished event is lent to the observers, then reclaimed so the
    /// next redirect reuses the same buffers. Returns the sequence
    /// number, or 0 without calling `fill` when tracing is off.
    pub(crate) fn emit_decision(
        &mut self,
        t: f64,
        queue_depth: u32,
        cause: u64,
        fill: impl FnOnce(&mut DecisionEvent),
    ) -> u64 {
        if !self.tracing {
            return 0;
        }
        let seq = self.next();
        self.emit_decision_with_seq(seq, t, queue_depth, cause, fill);
        seq
    }

    /// Emits the [`ObsEventKind::Decision`] for a sequence number that
    /// was reserved earlier with [`reserve_seq`](Self::reserve_seq).
    /// Only meaningful in reorder mode; the buffer releases the event
    /// (and any emissions it was holding back) in sequence order.
    pub(crate) fn emit_reserved_decision(
        &mut self,
        seq: u64,
        t: f64,
        queue_depth: u32,
        cause: u64,
        fill: impl FnOnce(&mut DecisionEvent),
    ) {
        debug_assert!(self.tracing, "a sequence was reserved without tracing");
        self.reserved_outstanding = self.reserved_outstanding.saturating_sub(1);
        self.emit_decision_with_seq(seq, t, queue_depth, cause, fill);
    }

    fn emit_decision_with_seq(
        &mut self,
        seq: u64,
        t: f64,
        queue_depth: u32,
        cause: u64,
        fill: impl FnOnce(&mut DecisionEvent),
    ) {
        if self.reorder.is_some() {
            // Reorder mode may hold the event, so the scratch payload
            // cannot be lent out and reclaimed; build an owned one.
            let mut decision = DecisionEvent::default();
            fill(&mut decision);
            self.deliver(Event {
                seq,
                parent: (cause != 0).then_some(cause),
                t,
                queue_depth,
                kind: ObsEventKind::Decision(decision),
            });
            return;
        }
        let mut decision = std::mem::take(&mut self.decision_scratch);
        decision.candidates.clear();
        fill(&mut decision);
        let event = Event {
            seq,
            parent: (cause != 0).then_some(cause),
            t,
            queue_depth,
            kind: ObsEventKind::Decision(decision),
        };
        for obs in &mut self.observers {
            if obs.wants_events() {
                obs.on_event(&event);
            }
        }
        let ObsEventKind::Decision(decision) = event.kind else {
            unreachable!("constructed as a decision above");
        };
        self.decision_scratch = decision;
    }
}
