//! Event-driven simulation of a RaDaR hosting platform.
//!
//! This crate reproduces the paper's evaluation environment (§6.1): a
//! backbone of router+host nodes (the UUNET-like testbed from
//! `radar-simnet`), every node a gateway generating client requests at a
//! constant rate, one redirector co-located with the network centroid,
//! FIFO servers, 12 KB objects, 10 ms hop delay, 350 KBps links.
//!
//! The request lifecycle follows the paper's system model (§2):
//!
//! 1. a client request enters at its gateway and travels to the
//!    redirector (propagation delay only — "the request size is
//!    negligible compared to the page size");
//! 2. the redirector picks a replica via the protocol's distribution
//!    algorithm (or a pluggable baseline [`SelectionPolicy`]) and
//!    forwards the request to that host;
//! 3. the host queues the request FIFO, records the preference path
//!    (host → gateway) for the placement algorithm, and serves it;
//! 4. the response travels back along the shortest path, paying
//!    per-hop propagation plus transmission time and consuming
//!    `bytes × hops` of backbone bandwidth — the paper's bandwidth
//!    metric.
//!
//! Periodically each host runs the placement algorithm
//! ([`radar_core::placement::run_placement`]); object copies made by
//! accepted `CreateObj` requests consume *overhead* bandwidth, tracked
//! separately (Fig. 7).
//!
//! One deliberate simplification, documented in DESIGN.md: relocation
//! control handshakes and data transfers complete within a placement run
//! (their real latency of a few hundred milliseconds is three orders of
//! magnitude below the 100 s placement period), while their bandwidth is
//! fully accounted. The paper's own replica-set invariant ("the
//! redirector is notified of copy creation after the fact and of
//! deletion before the fact") is preserved because the state changes are
//! applied in exactly that order.
//!
//! # Quick start
//!
//! ```
//! use radar_sim::{Scenario, Simulation};
//! use radar_workload::ZipfReeds;
//!
//! // A short Zipf run on a small object population.
//! let scenario = Scenario::builder()
//!     .num_objects(200)
//!     .duration(120.0)
//!     .seed(7)
//!     .build()?;
//! let workload = Box::new(ZipfReeds::new(200));
//! let report = Simulation::new(scenario, workload).run();
//! assert!(report.total_requests > 0);
//! # Ok::<(), radar_sim::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod env;
mod faults;
mod health;
mod json;
mod lifecycle;
mod metrics;
mod observer;
mod placement_policy;
mod platform;
mod redirect;
mod report;
mod selection;
mod shard;
mod sink;
mod trace;

pub use config::{
    InitialPlacement, NetworkParams, PlacementMode, Scenario, ScenarioBuilder, ScenarioError,
};
pub use faults::{Fault, FaultError, FaultSpec, FaultTransition, TransitionKind};
pub use json::{protocol_health_json, shard_profile_json, Json};
pub use metrics::{LoadEstimateSample, Metrics, RelocationAction, RelocationEvent};
pub use observer::{FailureReason, Observer, RequestRecord};
pub use placement_policy::{PlacementPolicy, RadarPlacement};
pub use platform::Simulation;
pub use report::{ReplicaCensus, RunReport};
pub use selection::{RadarSelection, SelectionPolicy};
pub use trace::{Trace, TraceEntry, TraceError};

/// The flight-recorder crate, re-exported so observers can name its
/// event types without a separate dependency declaration.
pub use radar_obs as obs;
