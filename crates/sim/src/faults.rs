//! Fault injection: scheduled host crashes, link partitions, and link
//! latency degradation.
//!
//! A [`FaultSpec`] is a declarative schedule of fault windows applied to
//! a [`Scenario`](crate::Scenario). Each fault opens at `from` seconds
//! and closes at `until` (or never, when `until` is `None`):
//!
//! * **Host crash** — the host stops serving; queued work is lost, the
//!   redirector routes around it, and if it stays down past the
//!   declare-dead timeout its replicas are purged and re-replicated
//!   elsewhere.
//! * **Link partition** — the link carries no traffic; routing
//!   recomputes reachability over the surviving links.
//! * **Link degradation** — the link's propagation delay is multiplied
//!   by `factor` (> 1).
//!
//! Overlapping windows on the same element compose: a host is up only
//! when *no* crash window covers the current time, and concurrent
//! degradations multiply their factors.
//!
//! The textual format (one directive per line, `#` comments) is shared
//! by the CLI's `--faults` flag and `docs/simulation-manual.md`:
//!
//! ```text
//! # policy knobs
//! min-replicas 2
//! declare-dead-after 60
//! # windows: <from> [<until>]  (omit <until> for "never repaired")
//! host-down 7 100 400
//! link-down 3 12 200 600
//! link-slow 3 12 4.0 200 600
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// One fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Host `host` is crashed for `[from, until)`.
    HostDown {
        /// The crashed host (node index).
        host: u16,
        /// Crash time (seconds).
        from: f64,
        /// Recovery time (seconds), or `None` if it never recovers.
        until: Option<f64>,
    },
    /// The link between `a` and `b` is partitioned for `[from, until)`.
    LinkDown {
        /// One endpoint (node index).
        a: u16,
        /// The other endpoint (node index).
        b: u16,
        /// Partition time (seconds).
        from: f64,
        /// Heal time (seconds), or `None` if it never heals.
        until: Option<f64>,
    },
    /// The link between `a` and `b` has its propagation delay multiplied
    /// by `factor` for `[from, until)`.
    LinkSlow {
        /// One endpoint (node index).
        a: u16,
        /// The other endpoint (node index).
        b: u16,
        /// Delay multiplier (> 1).
        factor: f64,
        /// Degradation start (seconds).
        from: f64,
        /// Restoration time (seconds), or `None` if never restored.
        until: Option<f64>,
    },
}

impl Fault {
    fn window(&self) -> (f64, Option<f64>) {
        match *self {
            Fault::HostDown { from, until, .. }
            | Fault::LinkDown { from, until, .. }
            | Fault::LinkSlow { from, until, .. } => (from, until),
        }
    }
}

/// Errors from building, parsing, or validating a [`FaultSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A line of the textual format did not parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A fault window is empty or has non-finite/negative times.
    BadWindow {
        /// Window start.
        from: f64,
        /// Window end, when given.
        until: Option<f64>,
    },
    /// A degradation factor was not finite and > 1.
    BadFactor(
        /// The offending factor.
        f64,
    ),
    /// A fault referenced a host outside the topology.
    UnknownHost(
        /// The offending node index.
        u16,
    ),
    /// A fault referenced a link that is not in the topology.
    UnknownLink(
        /// The offending endpoint pair.
        u16,
        /// Second endpoint.
        u16,
    ),
    /// A policy knob had a nonsensical value.
    BadPolicy(
        /// Description of the problem.
        String,
    ),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Malformed { line, content } => {
                write!(f, "fault spec line {line} is malformed: {content:?}")
            }
            FaultError::BadWindow { from, until } => {
                write!(f, "bad fault window: from={from} until={until:?}")
            }
            FaultError::BadFactor(v) => {
                write!(f, "degradation factor must be finite and > 1, got {v}")
            }
            FaultError::UnknownHost(h) => write!(f, "fault references unknown host {h}"),
            FaultError::UnknownLink(a, b) => {
                write!(f, "fault references unknown link {a}-{b}")
            }
            FaultError::BadPolicy(msg) => write!(f, "bad fault policy: {msg}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// What a single compiled fault transition does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransitionKind {
    /// A host crashes.
    HostCrash(
        /// The crashing host.
        u16,
    ),
    /// A crashed host comes back (empty — its disk image is discarded
    /// once the platform declares it dead).
    HostRecover(
        /// The recovering host.
        u16,
    ),
    /// A link partitions.
    LinkFail(
        /// One endpoint.
        u16,
        /// Other endpoint.
        u16,
    ),
    /// A partitioned link heals.
    LinkHeal(
        /// One endpoint.
        u16,
        /// Other endpoint.
        u16,
    ),
    /// A link's propagation delay is multiplied by the factor.
    LinkDegrade(
        /// One endpoint.
        u16,
        /// Other endpoint.
        u16,
        /// Delay multiplier.
        f64,
    ),
    /// A degradation window closes (divides the factor back out).
    LinkRestore(
        /// One endpoint.
        u16,
        /// Other endpoint.
        u16,
        /// Delay multiplier being removed.
        f64,
    ),
}

/// One compiled, timestamped fault transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTransition {
    /// When the transition fires (seconds).
    pub t: f64,
    /// What changes.
    pub kind: TransitionKind,
}

/// A declarative schedule of faults plus the recovery-policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    faults: Vec<Fault>,
    /// Seconds a host may stay crashed before the platform declares it
    /// dead, purges its replicas, and re-replicates (default 60).
    declare_dead_after: f64,
    /// Replica floor the re-replication sweep restores objects to
    /// (default 1).
    min_replicas: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultSpec {
    /// An empty spec: no faults, declare-dead after 60 s, replica floor 1.
    pub fn new() -> Self {
        Self {
            faults: Vec::new(),
            declare_dead_after: 60.0,
            min_replicas: 1,
        }
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled fault windows, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Seconds a crashed host may stay down before it is declared dead.
    pub fn declare_dead_after(&self) -> f64 {
        self.declare_dead_after
    }

    /// The replica floor the re-replication sweep maintains.
    pub fn min_replicas(&self) -> u32 {
        self.min_replicas
    }

    /// Sets the declare-dead timeout.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not strictly positive and finite.
    pub fn with_declare_dead_after(mut self, secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs > 0.0,
            "declare-dead timeout must be positive and finite, got {secs}"
        );
        self.declare_dead_after = secs;
        self
    }

    /// Sets the replica floor.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_min_replicas(mut self, n: u32) -> Self {
        assert!(n >= 1, "minimum replica count must be at least 1");
        self.min_replicas = n;
        self
    }

    /// Schedules a host crash over `[from, until)` (`None` = forever).
    pub fn host_down(mut self, host: u16, from: f64, until: Option<f64>) -> Self {
        self.faults.push(Fault::HostDown { host, from, until });
        self
    }

    /// Schedules a link partition over `[from, until)` (`None` = forever).
    pub fn link_down(mut self, a: u16, b: u16, from: f64, until: Option<f64>) -> Self {
        self.faults.push(Fault::LinkDown { a, b, from, until });
        self
    }

    /// Schedules a link delay degradation by `factor` over `[from, until)`.
    pub fn link_slow(mut self, a: u16, b: u16, factor: f64, from: f64, until: Option<f64>) -> Self {
        self.faults.push(Fault::LinkSlow {
            a,
            b,
            factor,
            from,
            until,
        });
        self
    }

    /// Checks every window, factor, and topology reference.
    ///
    /// `links` are the topology's undirected edges (either endpoint
    /// order); `num_nodes` bounds host indices.
    pub fn validate(&self, num_nodes: usize, links: &[(u16, u16)]) -> Result<(), FaultError> {
        if !(self.declare_dead_after.is_finite() && self.declare_dead_after > 0.0) {
            return Err(FaultError::BadPolicy(format!(
                "declare-dead-after must be positive and finite, got {}",
                self.declare_dead_after
            )));
        }
        if self.min_replicas == 0 {
            return Err(FaultError::BadPolicy(
                "min-replicas must be at least 1".into(),
            ));
        }
        let has_link = |a: u16, b: u16| {
            links
                .iter()
                .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
        };
        for fault in &self.faults {
            let (from, until) = fault.window();
            let ok_from = from.is_finite() && from >= 0.0;
            let ok_until = match until {
                None => true,
                Some(u) => u.is_finite() && u > from,
            };
            if !ok_from || !ok_until {
                return Err(FaultError::BadWindow { from, until });
            }
            match *fault {
                Fault::HostDown { host, .. } => {
                    if host as usize >= num_nodes {
                        return Err(FaultError::UnknownHost(host));
                    }
                }
                Fault::LinkDown { a, b, .. } => {
                    if !has_link(a, b) {
                        return Err(FaultError::UnknownLink(a, b));
                    }
                }
                Fault::LinkSlow { a, b, factor, .. } => {
                    if !(factor.is_finite() && factor > 1.0) {
                        return Err(FaultError::BadFactor(factor));
                    }
                    if !has_link(a, b) {
                        return Err(FaultError::UnknownLink(a, b));
                    }
                }
            }
        }
        Ok(())
    }

    /// Compiles the spec into a time-sorted transition schedule.
    ///
    /// Transitions at or after `horizon` are dropped (a recovery
    /// scheduled past the end of the run simply never happens — the
    /// element stays failed). Ties are broken by spec order, so the
    /// schedule — like everything else in the simulator — is a pure
    /// function of its inputs.
    pub fn transitions(&self, horizon: f64) -> Vec<FaultTransition> {
        let mut out: Vec<(f64, usize, FaultTransition)> = Vec::new();
        for (i, fault) in self.faults.iter().enumerate() {
            let (from, until) = fault.window();
            let (start, end) = match *fault {
                Fault::HostDown { host, .. } => (
                    TransitionKind::HostCrash(host),
                    TransitionKind::HostRecover(host),
                ),
                Fault::LinkDown { a, b, .. } => (
                    TransitionKind::LinkFail(a, b),
                    TransitionKind::LinkHeal(a, b),
                ),
                Fault::LinkSlow { a, b, factor, .. } => (
                    TransitionKind::LinkDegrade(a, b, factor),
                    TransitionKind::LinkRestore(a, b, factor),
                ),
            };
            if from < horizon {
                out.push((
                    from,
                    i,
                    FaultTransition {
                        t: from,
                        kind: start,
                    },
                ));
                if let Some(u) = until {
                    if u < horizon {
                        out.push((u, i, FaultTransition { t: u, kind: end }));
                    }
                }
            }
        }
        out.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
        out.into_iter().map(|(_, _, t)| t).collect()
    }

    /// Parses the textual format (see the module docs).
    pub fn from_text(text: &str) -> Result<Self, FaultError> {
        let mut spec = FaultSpec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let malformed = || FaultError::Malformed {
                line,
                content: raw.trim().to_string(),
            };
            let mut parts = content.split_whitespace();
            let directive = parts.next().ok_or_else(malformed)?;
            let rest: Vec<&str> = parts.collect();
            let f64_at = |i: usize| -> Result<f64, FaultError> {
                rest.get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(malformed)
            };
            let u16_at = |i: usize| -> Result<u16, FaultError> {
                rest.get(i)
                    .and_then(|s| s.parse::<u16>().ok())
                    .ok_or_else(malformed)
            };
            let until_at = |i: usize| -> Result<Option<f64>, FaultError> {
                match rest.get(i) {
                    None => Ok(None),
                    Some(s) => s.parse::<f64>().map(Some).map_err(|_| malformed()),
                }
            };
            match directive {
                "min-replicas" => {
                    let n = rest
                        .first()
                        .and_then(|s| s.parse::<u32>().ok())
                        .ok_or_else(malformed)?;
                    if rest.len() != 1 || n == 0 {
                        return Err(malformed());
                    }
                    spec.min_replicas = n;
                }
                "declare-dead-after" => {
                    let secs = f64_at(0)?;
                    if rest.len() != 1 || !(secs.is_finite() && secs > 0.0) {
                        return Err(malformed());
                    }
                    spec.declare_dead_after = secs;
                }
                "host-down" => {
                    if rest.len() < 2 || rest.len() > 3 {
                        return Err(malformed());
                    }
                    spec = spec.host_down(u16_at(0)?, f64_at(1)?, until_at(2)?);
                }
                "link-down" => {
                    if rest.len() < 3 || rest.len() > 4 {
                        return Err(malformed());
                    }
                    spec = spec.link_down(u16_at(0)?, u16_at(1)?, f64_at(2)?, until_at(3)?);
                }
                "link-slow" => {
                    if rest.len() < 4 || rest.len() > 5 {
                        return Err(malformed());
                    }
                    spec = spec.link_slow(
                        u16_at(0)?,
                        u16_at(1)?,
                        f64_at(2)?,
                        f64_at(3)?,
                        until_at(4)?,
                    );
                }
                _ => return Err(malformed()),
            }
        }
        Ok(spec)
    }

    /// Serializes to the [`from_text`](Self::from_text) line format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("min-replicas {}\n", self.min_replicas));
        out.push_str(&format!("declare-dead-after {}\n", self.declare_dead_after));
        for fault in &self.faults {
            let until = |u: Option<f64>| u.map(|v| format!(" {v}")).unwrap_or_default();
            match *fault {
                Fault::HostDown {
                    host,
                    from,
                    until: u,
                } => {
                    out.push_str(&format!("host-down {host} {from}{}\n", until(u)));
                }
                Fault::LinkDown {
                    a,
                    b,
                    from,
                    until: u,
                } => {
                    out.push_str(&format!("link-down {a} {b} {from}{}\n", until(u)));
                }
                Fault::LinkSlow {
                    a,
                    b,
                    factor,
                    from,
                    until: u,
                } => {
                    out.push_str(&format!("link-slow {a} {b} {factor} {from}{}\n", until(u)));
                }
            }
        }
        out
    }
}

/// Live fault state derived by replaying compiled transitions:
/// reference-counted down states (overlapping windows compose) and
/// multiplicative per-link delay factors.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    host_down: Vec<u32>,
    link_down: BTreeMap<(u16, u16), u32>,
    link_factor: BTreeMap<(u16, u16), Vec<f64>>,
}

fn norm(a: u16, b: u16) -> (u16, u16) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl FaultState {
    pub(crate) fn new(num_nodes: usize) -> Self {
        Self {
            host_down: vec![0; num_nodes],
            link_down: BTreeMap::new(),
            link_factor: BTreeMap::new(),
        }
    }

    /// Applies one transition. Returns `true` when link availability
    /// changed (the caller must recompute routing).
    pub(crate) fn apply(&mut self, kind: TransitionKind) -> bool {
        match kind {
            TransitionKind::HostCrash(h) => {
                self.host_down[h as usize] += 1;
                false
            }
            TransitionKind::HostRecover(h) => {
                let count = &mut self.host_down[h as usize];
                *count = count.saturating_sub(1);
                false
            }
            TransitionKind::LinkFail(a, b) => {
                let count = self.link_down.entry(norm(a, b)).or_insert(0);
                *count += 1;
                *count == 1
            }
            TransitionKind::LinkHeal(a, b) => {
                let count = self.link_down.entry(norm(a, b)).or_insert(0);
                let was_down = *count > 0;
                *count = count.saturating_sub(1);
                was_down && *count == 0
            }
            TransitionKind::LinkDegrade(a, b, factor) => {
                self.link_factor.entry(norm(a, b)).or_default().push(factor);
                false
            }
            TransitionKind::LinkRestore(a, b, factor) => {
                if let Some(stack) = self.link_factor.get_mut(&norm(a, b)) {
                    if let Some(pos) = stack.iter().position(|&f| f == factor) {
                        stack.remove(pos);
                    }
                }
                false
            }
        }
    }

    pub(crate) fn host_up(&self, host: u16) -> bool {
        self.host_down[host as usize] == 0
    }

    /// `true` when no failure currently holds the link down. Production
    /// routing consults the [`radar_simnet::RoutingView`] link state
    /// (kept in lockstep by the fault handler); this accessor remains
    /// for tests asserting the fault-counting semantics directly.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn link_up(&self, a: u16, b: u16) -> bool {
        self.link_down.get(&norm(a, b)).copied().unwrap_or(0) == 0
    }

    /// Combined delay multiplier on a link (1.0 when undegraded).
    pub(crate) fn link_factor(&self, a: u16, b: u16) -> f64 {
        self.link_factor
            .get(&norm(a, b))
            .map(|stack| stack.iter().product())
            .unwrap_or(1.0)
    }

    /// `true` when any link currently carries a degradation factor.
    pub(crate) fn any_link_degraded(&self) -> bool {
        self.link_factor.values().any(|stack| !stack.is_empty())
    }

    /// `true` when no fault of any kind is active: every host up, every
    /// link carrying traffic, no degradation factor applied. The sharded
    /// event loop only runs its parallel fast path inside all-clear
    /// windows; while any fault holds, it falls back to the serial loop
    /// (see `crate::shard`).
    pub(crate) fn all_clear(&self) -> bool {
        self.host_down.iter().all(|&c| c == 0)
            && self.link_down.values().all(|&c| c == 0)
            && self.link_factor.values().all(|stack| stack.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_has_no_transitions() {
        let spec = FaultSpec::new();
        assert!(spec.is_empty());
        assert!(spec.transitions(1_000.0).is_empty());
        assert_eq!(spec.validate(10, &[]), Ok(()));
    }

    #[test]
    fn transitions_are_sorted_and_clamped() {
        let spec = FaultSpec::new()
            .host_down(1, 50.0, Some(150.0))
            .link_down(0, 1, 10.0, Some(2_000.0)) // heal beyond horizon
            .host_down(2, 10.0, None); // never recovers
        let ts = spec.transitions(1_000.0);
        let times: Vec<f64> = ts.iter().map(|t| t.t).collect();
        assert_eq!(times, vec![10.0, 10.0, 50.0, 150.0]);
        // Equal times keep spec order: the link fault precedes host 2.
        assert_eq!(ts[0].kind, TransitionKind::LinkFail(0, 1));
        assert_eq!(ts[1].kind, TransitionKind::HostCrash(2));
        // The heal at t=2000 and the missing recoveries are absent.
        assert!(ts
            .iter()
            .all(|t| !matches!(t.kind, TransitionKind::LinkHeal(..))));
    }

    #[test]
    fn crash_at_time_zero_is_allowed() {
        let spec = FaultSpec::new().host_down(0, 0.0, Some(10.0));
        assert_eq!(spec.validate(1, &[]), Ok(()));
        let ts = spec.transitions(100.0);
        assert_eq!(ts[0].t, 0.0);
        assert_eq!(ts[0].kind, TransitionKind::HostCrash(0));
    }

    #[test]
    fn recover_after_end_means_never_recovers() {
        let spec = FaultSpec::new().host_down(3, 10.0, Some(500.0));
        let ts = spec.transitions(200.0);
        assert_eq!(ts.len(), 1, "only the crash is within the horizon");
        let mut state = FaultState::new(4);
        for t in &ts {
            state.apply(t.kind);
        }
        assert!(!state.host_up(3));
    }

    #[test]
    fn overlapping_host_windows_compose() {
        let spec = FaultSpec::new()
            .host_down(0, 10.0, Some(100.0))
            .host_down(0, 50.0, Some(200.0));
        let mut state = FaultState::new(1);
        // Walk the schedule, checking liveness between transitions.
        for t in spec.transitions(1_000.0) {
            state.apply(t.kind);
            let expect_up = t.t >= 200.0;
            assert_eq!(state.host_up(0), expect_up, "at t={}", t.t);
        }
        assert!(state.host_up(0));
    }

    #[test]
    fn overlapping_degradations_multiply_and_unwind() {
        let mut state = FaultState::new(2);
        state.apply(TransitionKind::LinkDegrade(0, 1, 2.0));
        state.apply(TransitionKind::LinkDegrade(1, 0, 3.0)); // either order
        assert_eq!(state.link_factor(0, 1), 6.0);
        state.apply(TransitionKind::LinkRestore(0, 1, 2.0));
        assert_eq!(state.link_factor(0, 1), 3.0);
        state.apply(TransitionKind::LinkRestore(0, 1, 3.0));
        assert_eq!(state.link_factor(0, 1), 1.0);
        assert!(!state.any_link_degraded());
    }

    #[test]
    fn all_clear_tracks_every_fault_kind() {
        let mut state = FaultState::new(3);
        assert!(state.all_clear());
        state.apply(TransitionKind::HostCrash(1));
        assert!(!state.all_clear());
        state.apply(TransitionKind::HostRecover(1));
        assert!(state.all_clear());
        state.apply(TransitionKind::LinkFail(0, 2));
        assert!(!state.all_clear());
        state.apply(TransitionKind::LinkHeal(0, 2));
        assert!(state.all_clear());
        state.apply(TransitionKind::LinkDegrade(0, 1, 2.0));
        assert!(!state.all_clear());
        state.apply(TransitionKind::LinkRestore(0, 1, 2.0));
        assert!(state.all_clear());
    }

    #[test]
    fn link_state_counts_overlaps() {
        let mut state = FaultState::new(3);
        assert!(state.apply(TransitionKind::LinkFail(2, 1)));
        assert!(!state.link_up(1, 2));
        // Second overlapping failure: no availability change.
        assert!(!state.apply(TransitionKind::LinkFail(1, 2)));
        // First heal: still down.
        assert!(!state.apply(TransitionKind::LinkHeal(1, 2)));
        assert!(!state.link_up(1, 2));
        // Second heal: back up — availability changed.
        assert!(state.apply(TransitionKind::LinkHeal(2, 1)));
        assert!(state.link_up(1, 2));
    }

    #[test]
    fn validation_rejects_bad_references_and_windows() {
        let links = [(0u16, 1u16)];
        let bad_host = FaultSpec::new().host_down(9, 0.0, None);
        assert_eq!(
            bad_host.validate(3, &links),
            Err(FaultError::UnknownHost(9))
        );
        let bad_link = FaultSpec::new().link_down(0, 2, 0.0, None);
        assert_eq!(
            bad_link.validate(3, &links),
            Err(FaultError::UnknownLink(0, 2))
        );
        let empty_window = FaultSpec::new().host_down(0, 50.0, Some(50.0));
        assert_eq!(
            empty_window.validate(3, &links),
            Err(FaultError::BadWindow {
                from: 50.0,
                until: Some(50.0)
            })
        );
        let bad_factor = FaultSpec::new().link_slow(0, 1, 0.5, 0.0, None);
        assert_eq!(
            bad_factor.validate(3, &links),
            Err(FaultError::BadFactor(0.5))
        );
    }

    #[test]
    fn text_round_trip() {
        let spec = FaultSpec::new()
            .with_min_replicas(2)
            .with_declare_dead_after(45.0)
            .host_down(7, 100.0, Some(400.0))
            .link_down(3, 12, 200.0, None)
            .link_slow(3, 12, 4.0, 200.0, Some(600.0));
        let parsed = FaultSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn parser_accepts_comments_and_rejects_junk() {
        let spec =
            FaultSpec::from_text("# schedule\nmin-replicas 2\nhost-down 1 10 20  # flaky host\n\n")
                .unwrap();
        assert_eq!(spec.min_replicas(), 2);
        assert_eq!(spec.faults().len(), 1);

        for bad in [
            "host-down",
            "host-down x 10",
            "link-down 1 2",
            "link-slow 1 2 10",
            "warp-core-breach 1",
            "min-replicas 0",
            "declare-dead-after -3",
        ] {
            assert!(
                matches!(FaultSpec::from_text(bad), Err(FaultError::Malformed { .. })),
                "{bad:?} should be rejected"
            );
        }
    }
}
