//! Pluggable replica-placement policies.
//!
//! Mirrors [`SelectionPolicy`](crate::SelectionPolicy) on the placement
//! side of the protocol: the paper's own distribution algorithm
//! (§4, Figs. 3–5) is [`RadarPlacement`], a thin delegation to
//! [`radar_core::placement::run_placement_into`]; comparator strategies
//! (availability-aware continuous placement, cluster-based
//! load-balancing replication) live in the `radar-baselines` crate and
//! implement the same trait. Every policy sees the identical
//! [`PlacementEnv`] surface — `CreateObj` admission, drop arbitration,
//! offload-recipient probing, §5 replica caps — so head-to-head runs
//! differ only in the decision rule, never in the bookkeeping.

use radar_core::placement::{run_placement_into, PlacementEnv, PlacementOutcome, PlacementScratch};
use radar_core::HostState;

/// Decides replica placement for one host, once per placement epoch.
///
/// The platform calls [`run_epoch`](Self::run_epoch) for each host on
/// its placement timer, inside a directory batch (count resets coalesce
/// at commit). Implementations interact with the rest of the platform
/// exclusively through the [`PlacementEnv`] they are handed: `create_obj`
/// for migrations/replications (the env performs the transfer accounting
/// and the notify-*after*-create protocol), `request_drop` /
/// `notify_affinity` for shrinking, `find_offload_recipient` for
/// load-report probing, and `may_replicate` / `replica_count` for the §5
/// consistency caps — which every policy **must** respect: never create
/// a new physical copy while `may_replicate(x)` is `false`.
///
/// Contract at the end of an epoch: record every action in `out` (the
/// metrics/observer feed), then reset the host's access counts and mark
/// the run (`host.reset_access_counts()` + `host.mark_placement_run(now)`)
/// so the next epoch judges a fresh window. [`run_placement_into`] does
/// all of this for the paper's algorithm; custom policies must do the
/// same.
pub trait PlacementPolicy: Send {
    /// Runs one placement epoch for `host` at time `now`. `scratch` is
    /// reusable working memory and `out` is cleared and refilled — the
    /// platform owns both so steady-state epochs allocate nothing.
    fn run_epoch(
        &mut self,
        host: &mut HostState,
        now: f64,
        env: &mut dyn PlacementEnv,
        scratch: &mut PlacementScratch,
        out: &mut PlacementOutcome,
    );

    /// Policy name for reports (`radar`, `availability`, `cluster`, …).
    fn name(&self) -> &str;
}

/// The paper's placement algorithm (deletion threshold, geo-migration /
/// geo-replication by preference-path shares, Fig. 5 offloading),
/// delegating to [`radar_core::placement::run_placement_into`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RadarPlacement;

impl RadarPlacement {
    /// Creates the protocol's own placement policy.
    pub fn new() -> Self {
        RadarPlacement
    }
}

impl PlacementPolicy for RadarPlacement {
    fn run_epoch(
        &mut self,
        host: &mut HostState,
        now: f64,
        env: &mut dyn PlacementEnv,
        scratch: &mut PlacementScratch,
        out: &mut PlacementOutcome,
    ) {
        run_placement_into(host, now, env, scratch, out);
    }

    fn name(&self) -> &str {
        "radar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radar_placement_is_the_default_algorithm() {
        // The trait object must reach the exact same code path as the
        // direct call — spot-checked by name here; the golden-log gate
        // pins byte-identity end to end.
        let mut policy = RadarPlacement::new();
        assert_eq!(PlacementPolicy::name(&policy), "radar");
        let _: &mut dyn PlacementPolicy = &mut policy;
    }
}
