//! The redirect engine: the per-request decision layer between the
//! event loop and the [`Redirector`], with a per-(gateway, object)
//! candidate cache.
//!
//! Every redirect must (1) filter the object's replicas down to the
//! *usable* ones — host up, redirector→host and host→gateway routes
//! intact — with their hop distances to the gateway, then (2) run the
//! Fig. 2 decision over that list. Step (2) is inherently per-request
//! (the winner's request count increments every choice), but step (1)
//! only changes when the replica set, the routing state, or the fault
//! state changes. [`RedirectEngine`] caches step (1) per
//! (gateway, object) slot, keyed on:
//!
//! * the object's [`Directory` version](radar_core::Directory::version)
//!   — bumped on every membership/affinity change, including the
//!   mid-redirect primary-fallback `install`;
//! * the [`RoutingView` generation](radar_simnet::RoutingView::generation)
//!   — bumped on every effective link up/down transition;
//! * the platform's fault generation — bumped on every fault transition
//!   (host crashes and recoveries change the `usable` filter without
//!   touching routing).
//!
//! A hit skips the per-replica liveness and path checks, the distance
//! lookups, and the candidate-vector allocation the uncached path pays
//! on every request. The decision itself is *never* cached: cached
//! candidates feed [`Redirector::choose_among`], which runs the same
//! Fig. 2 arithmetic as the uncached path — decisions are bit-identical
//! either way.

use radar_core::{ChoiceExplanation, ObjectId, Redirector};
use radar_simnet::{NodeId, RoutingView};

use crate::faults::FaultState;

/// One cached usable-candidate list with the state versions it was
/// computed under.
struct CacheSlot {
    dir_version: u64,
    routing_gen: u64,
    fault_gen: u32,
    /// `(entry_index, distance)` pairs in replica-set order — exactly
    /// what the uncached filter would build.
    candidates: Vec<(u32, u32)>,
    /// Entry index of the closest candidate `p` (minimum
    /// `(distance, host)`). Fig. 2's `p` is a pure function of the
    /// candidate list — unlike `q`, it never depends on request counts —
    /// so it is computed once per slot fill instead of once per request.
    /// Unused (zero) when `candidates` is empty.
    closest: u32,
}

/// Per-(gateway, object) candidate cache over the Fig. 2 decision rule.
/// See the module docs for the invalidation contract.
pub(crate) struct RedirectEngine {
    /// Flat slot table indexed `object * num_nodes + gateway`.
    slots: Vec<Option<CacheSlot>>,
    num_nodes: usize,
    /// Decisions served from a fresh slot since the last
    /// [`take_cache_stats`](Self::take_cache_stats).
    hits: u64,
    /// Decisions that had to (re)fill their slot since the last
    /// [`take_cache_stats`](Self::take_cache_stats).
    misses: u64,
}

impl RedirectEngine {
    pub(crate) fn new(num_objects: u32, num_nodes: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(num_objects as usize * num_nodes, || None);
        Self {
            slots,
            num_nodes,
            hits: 0,
            misses: 0,
        }
    }

    /// Reads and resets the candidate-cache hit/miss tally (profiling
    /// harvests it per lane; the counters themselves are always on —
    /// two branch-free increments against a 150 ns+ decision).
    pub(crate) fn take_cache_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }

    /// Chooses the replica of `object` serving a request entering at
    /// `gateway`, through redirector node `rnode`. Reuses the cached
    /// candidate list when every version key matches; rebuilds it (with
    /// the same filter and distance source as the uncached path)
    /// otherwise. Passing `explanation` requests the Fig. 2 decision
    /// snapshot for the flight recorder, filled into the caller's
    /// scratch so tracing allocates nothing per request.
    ///
    /// Returns `None` when no usable replica exists — the platform then
    /// runs its primary-fallback path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn choose(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        rnode: NodeId,
        redirector: &mut Redirector,
        view: &RoutingView,
        fault_state: &FaultState,
        fault_gen: u32,
        explanation: Option<&mut ChoiceExplanation>,
    ) -> Option<NodeId> {
        let slot = &mut self.slots[object.index() * self.num_nodes + gateway.index()];
        let dir_version = redirector.directory().version(object);
        let routing_gen = view.generation();
        let fresh = matches!(
            slot,
            Some(s) if s.dir_version == dir_version
                && s.routing_gen == routing_gen
                && s.fault_gen == fault_gen
        );
        if fresh {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if !fresh {
            // A replica is usable when its host is up and traffic can
            // flow redirector → host and host → gateway (the same
            // predicate the uncached filter applies). The closest
            // candidate is identified in the same pass. A stale slot
            // donates its vector, so steady-state invalidations (after
            // placement actions) refill in place instead of allocating.
            let mut candidates = match slot.take() {
                Some(stale) => {
                    let mut v = stale.candidates;
                    v.clear();
                    v
                }
                None => Vec::new(),
            };
            let mut closest = 0u32;
            let mut best = (u32::MAX, NodeId::new(u16::MAX));
            for (i, e) in redirector.replicas(object).iter().enumerate() {
                if fault_state.host_up(e.host.index() as u16)
                    && !view.path(rnode, e.host).is_empty()
                    && !view.path(e.host, gateway).is_empty()
                {
                    let dist = view.distance(e.host, gateway);
                    candidates.push((i as u32, dist));
                    if (dist, e.host) < best {
                        best = (dist, e.host);
                        closest = i as u32;
                    }
                }
            }
            *slot = Some(CacheSlot {
                dir_version,
                routing_gen,
                fault_gen,
                candidates,
                closest,
            });
        }
        let slot = slot.as_ref().expect("slot filled above");
        redirector.choose_among_into(object, &slot.candidates, Some(slot.closest), explanation)
    }

    /// Splits the cache into `num_shards` contiguous object-range shards
    /// (the same partition as [`radar_core::shard_ranges`]), each owning
    /// its objects' slots so worker threads can serve cache hits without
    /// synchronization. The parent keeps an empty table and must not
    /// serve decisions until [`absorb_shards`](Self::absorb_shards)
    /// reunites the slots.
    pub(crate) fn split_shards(&mut self, num_shards: usize) -> Vec<EngineShard> {
        let num_objects = (self.slots.len() / self.num_nodes.max(1)) as u32;
        let ranges = radar_core::shard_ranges(num_objects, num_shards);
        let mut rest = std::mem::take(&mut self.slots);
        let mut shards: Vec<EngineShard> = Vec::with_capacity(num_shards);
        for s in (0..num_shards).rev() {
            let (start, _) = ranges[s];
            let slots = rest.split_off(start as usize * self.num_nodes);
            shards.push(EngineShard {
                base: start,
                num_nodes: self.num_nodes,
                slots,
                hits: 0,
                misses: 0,
            });
        }
        shards.reverse();
        debug_assert!(rest.is_empty());
        shards
    }

    /// Reunites shards produced by [`split_shards`](Self::split_shards),
    /// in the same order.
    pub(crate) fn absorb_shards(&mut self, shards: Vec<EngineShard>) {
        debug_assert!(self.slots.is_empty(), "absorb into a split engine only");
        for shard in shards {
            debug_assert_eq!(shard.base as usize * self.num_nodes, self.slots.len());
            self.slots.extend(shard.slots);
        }
    }
}

/// One worker thread's slice of the [`RedirectEngine`] candidate cache:
/// the slots for a contiguous object range. Decisions made through a
/// shard are bit-identical to the unsplit engine's — same filter output,
/// same Fig. 2 arithmetic — because inside a parallel window (no faults,
/// full connectivity) the usability filter passes every replica.
pub(crate) struct EngineShard {
    /// First object id this shard owns.
    base: u32,
    num_nodes: usize,
    /// Slot table indexed `(object - base) * num_nodes + gateway`.
    slots: Vec<Option<CacheSlot>>,
    /// Decisions served from a fresh slot since the last harvest.
    hits: u64,
    /// Decisions that had to (re)fill their slot since the last harvest.
    misses: u64,
}

impl EngineShard {
    /// Reads and resets this shard's cache hit/miss tally. Workers
    /// harvest at every `Collect`, before the shard is sent back and
    /// absorbed, so no tally is ever double-counted.
    pub(crate) fn take_cache_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }

    /// The shard-local Fig. 2 decision. Mirrors
    /// [`RedirectEngine::choose`] except that the usable-replica filter
    /// is vacuous: the sharded loop only defers redirects while every
    /// host is up and every route intact (see `crate::shard`), so every
    /// replica is usable and only the distance lookup remains. Candidate
    /// lists and the cached closest replica are therefore identical to
    /// what the serial engine would build at the same point in the event
    /// order.
    pub(crate) fn choose(
        &mut self,
        object: ObjectId,
        gateway: NodeId,
        shard: &mut radar_core::RedirectorShard,
        net: &crate::shard::NetSnapshot,
        explanation: Option<&mut ChoiceExplanation>,
    ) -> Option<NodeId> {
        let idx = (object.index() - self.base as usize) * self.num_nodes + gateway.index();
        let slot = &mut self.slots[idx];
        let dir_version = shard.version(object);
        let fresh = matches!(
            slot,
            Some(s) if s.dir_version == dir_version
                && s.routing_gen == net.routing_gen()
                && s.fault_gen == net.fault_gen()
        );
        if fresh {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if !fresh {
            let mut candidates = match slot.take() {
                Some(stale) => {
                    let mut v = stale.candidates;
                    v.clear();
                    v
                }
                None => Vec::new(),
            };
            let mut closest = 0u32;
            let mut best = (u32::MAX, NodeId::new(u16::MAX));
            for (i, e) in shard.replicas(object).iter().enumerate() {
                let dist = net.distance(e.host, gateway);
                candidates.push((i as u32, dist));
                if (dist, e.host) < best {
                    best = (dist, e.host);
                    closest = i as u32;
                }
            }
            *slot = Some(CacheSlot {
                dir_version,
                routing_gen: net.routing_gen(),
                fault_gen: net.fault_gen(),
                candidates,
                closest,
            });
        }
        let slot = slot.as_ref().expect("slot filled above");
        shard.choose_among_into(object, &slot.candidates, Some(slot.closest), explanation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_simnet::builders;

    fn x() -> ObjectId {
        ObjectId::new(0)
    }

    #[test]
    fn cached_decisions_match_uncached_stream() {
        let view = RoutingView::new(builders::uunet());
        let fault_state = FaultState::new(view.topology().len());
        let mut cached = Redirector::new(1, 2.0);
        cached.install(x(), NodeId::new(3));
        cached.install(x(), NodeId::new(40));
        let mut plain = cached.clone();
        let mut engine = RedirectEngine::new(1, view.topology().len());
        let rnode = view.table().centroid();
        for i in 0..300u16 {
            let gw = NodeId::new(i % view.topology().len() as u16);
            let expect = plain.choose_replica_filtered(x(), gw, view.table(), &|_| true);
            let got = engine.choose(x(), gw, rnode, &mut cached, &view, &fault_state, 0, None);
            assert_eq!(got, expect, "request {i}");
        }
        assert_eq!(cached, plain, "identical bookkeeping after the stream");
    }

    #[test]
    fn membership_change_invalidates_the_slot() {
        let view = RoutingView::new(builders::star(5));
        let fault_state = FaultState::new(view.topology().len());
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(1));
        let mut engine = RedirectEngine::new(1, view.topology().len());
        let gw = NodeId::new(2);
        let rnode = NodeId::new(0);
        let first = engine.choose(x(), gw, rnode, &mut r, &view, &fault_state, 0, None);
        assert_eq!(first, Some(NodeId::new(1)));
        // A new much-closer replica must be seen immediately.
        r.notify_created(x(), gw);
        let second = engine.choose(x(), gw, rnode, &mut r, &view, &fault_state, 0, None);
        assert_eq!(second, Some(gw), "stale cache would still pick node 1");
    }

    #[test]
    fn shard_decisions_match_the_unsplit_engine() {
        // Inside a parallel window (no faults, full connectivity) a
        // shard must reproduce the serial engine's decision stream and
        // bookkeeping exactly — that is the sharded loop's whole claim.
        let view = RoutingView::new(builders::uunet());
        let fault_state = FaultState::new(view.topology().len());
        let net = crate::shard::NetSnapshot::from_view(&view, 0);
        let mut serial = Redirector::new(4, 2.0);
        for i in 0..4 {
            serial.install(ObjectId::new(i), NodeId::new(3));
            serial.install(ObjectId::new(i), NodeId::new(40));
        }
        let mut sharded = serial.clone();
        let mut engine = RedirectEngine::new(4, view.topology().len());
        let mut split_engine = RedirectEngine::new(4, view.topology().len());
        let mut dir_shards = sharded.split_shards(2);
        let mut engine_shards = split_engine.split_shards(2);
        let rnode = view.table().centroid();
        for i in 0..600u16 {
            let object = ObjectId::new(u32::from(i) % 4);
            let gw = NodeId::new(i % view.topology().len() as u16);
            let expect =
                engine.choose(object, gw, rnode, &mut serial, &view, &fault_state, 0, None);
            let s = (object.index() * 2) / 4;
            let got = engine_shards[s].choose(object, gw, &mut dir_shards[s], &net, None);
            assert_eq!(got, expect, "request {i}");
        }
        sharded.absorb_shards(dir_shards);
        assert_eq!(sharded, serial, "identical bookkeeping after the stream");
    }

    #[test]
    fn cache_stats_tally_hits_and_misses_and_reset_on_take() {
        let view = RoutingView::new(builders::star(5));
        let fault_state = FaultState::new(view.topology().len());
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(1));
        let mut engine = RedirectEngine::new(1, view.topology().len());
        let gw = NodeId::new(2);
        let rnode = NodeId::new(0);
        engine.choose(x(), gw, rnode, &mut r, &view, &fault_state, 0, None);
        engine.choose(x(), gw, rnode, &mut r, &view, &fault_state, 0, None);
        engine.choose(x(), gw, rnode, &mut r, &view, &fault_state, 0, None);
        assert_eq!(engine.take_cache_stats(), (2, 1), "fill, then two hits");
        assert_eq!(engine.take_cache_stats(), (0, 0), "take resets");
        // Invalidation shows up as a fresh miss.
        r.notify_created(x(), gw);
        engine.choose(x(), gw, rnode, &mut r, &view, &fault_state, 0, None);
        assert_eq!(engine.take_cache_stats(), (0, 1));
    }

    #[test]
    fn fault_generation_invalidates_the_slot() {
        let view = RoutingView::new(builders::star(5));
        let mut fault_state = FaultState::new(view.topology().len());
        let mut r = Redirector::new(1, 2.0);
        r.install(x(), NodeId::new(1));
        r.install(x(), NodeId::new(3));
        let mut engine = RedirectEngine::new(1, view.topology().len());
        let gw = NodeId::new(1);
        let rnode = NodeId::new(0);
        let first = engine.choose(x(), gw, rnode, &mut r, &view, &fault_state, 0, None);
        assert_eq!(first, Some(NodeId::new(1)), "local replica wins");
        // Crash the local replica's host: with a bumped fault
        // generation the filter re-runs and only node 3 remains.
        fault_state.apply(crate::faults::TransitionKind::HostCrash(1));
        let second = engine.choose(x(), gw, rnode, &mut r, &view, &fault_state, 1, None);
        assert_eq!(second, Some(NodeId::new(3)));
    }
}
