//! Custom instrumentation hooks.

use crate::faults::FaultTransition;
use crate::metrics::RelocationEvent;

/// Why a request failed to be served (fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// Every replica of the object (and the primary fallback) was on a
    /// crashed host.
    AllReplicasDown,
    /// A replica existed but no route reached it from the redirector, or
    /// the response could not reach the gateway.
    Unreachable,
    /// The serving host crashed while the request was queued or in
    /// service.
    CrashedMidService,
}

impl FailureReason {
    /// Stable kebab-case tag, as recorded in flight-recorder
    /// [`radar_obs::EventKind::RequestFailed`] events.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureReason::AllReplicasDown => "all-replicas-down",
            FailureReason::Unreachable => "unreachable",
            FailureReason::CrashedMidService => "crashed-mid-service",
        }
    }
}

/// One served request, as delivered to observers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// When the request entered its gateway (seconds).
    pub entered: f64,
    /// When the response reached the gateway (seconds).
    pub delivered: f64,
    /// The gateway node.
    pub gateway: u16,
    /// The requested object.
    pub object: u32,
    /// The host that served it.
    pub host: u16,
    /// End-to-end latency (seconds).
    pub latency: f64,
    /// Hops the response traveled.
    pub hops: u32,
}

/// Receives a live feed of simulation events — the extension point for
/// measurements the built-in [`crate::Metrics`] does not collect
/// (per-object latency percentiles, custom traces, live dashboards, …).
///
/// All methods have empty defaults; implement only what you need.
/// Observers run synchronously inside the event loop, so they should be
/// cheap; they cannot affect the simulation (they receive shared
/// borrows of event data only).
///
/// # Examples
///
/// ```
/// use radar_sim::{Observer, RequestRecord, Scenario, Simulation};
/// use radar_workload::ZipfReeds;
///
/// #[derive(Default)]
/// struct SlowCounter {
///     over_100ms: u64,
/// }
/// impl Observer for SlowCounter {
///     fn on_request_served(&mut self, r: &RequestRecord) {
///         if r.latency > 0.1 {
///             self.over_100ms += 1;
///         }
///     }
/// }
///
/// let scenario = Scenario::builder()
///     .num_objects(50)
///     .node_request_rate(1.0)
///     .duration(30.0)
///     .build()?;
/// let mut sim = Simulation::new(scenario, Box::new(ZipfReeds::new(50)));
/// sim.attach_observer(Box::new(SlowCounter::default()));
/// let _report = sim.run();
/// # Ok::<(), radar_sim::ScenarioError>(())
/// ```
pub trait Observer: Send {
    /// A response was delivered to its gateway.
    fn on_request_served(&mut self, record: &RequestRecord) {
        let _ = record;
    }

    /// A placement action happened (migration, replication, drop, …).
    fn on_relocation(&mut self, event: &RelocationEvent) {
        let _ = event;
    }

    /// A load-measurement tick completed; `max_load` is the platform-wide
    /// maximum measured host load.
    fn on_load_sample(&mut self, t: f64, max_load: f64) {
        let _ = (t, max_load);
    }

    /// A scheduled fault transition was applied (crash, recovery,
    /// partition, heal, degradation).
    fn on_fault(&mut self, transition: &FaultTransition) {
        let _ = transition;
    }

    /// A request failed: no live, reachable replica could serve it.
    fn on_request_failed(&mut self, t: f64, object: u32, gateway: u16, reason: FailureReason) {
        let _ = (t, object, gateway, reason);
    }

    /// The re-replication sweep restored `object` to its minimum replica
    /// count, `elapsed` seconds after it fell below the floor.
    fn on_re_replication(&mut self, t: f64, object: u32, target: u16, elapsed: f64) {
        let _ = (t, object, target, elapsed);
    }

    /// Whether this observer wants the flight-recorder event feed
    /// ([`on_event`](Self::on_event)). The platform only builds the
    /// typed [`radar_obs::Event`]s — decision snapshots, placement
    /// explanations, causal parents — when at least one attached
    /// observer returns `true`, so with no recorder the hot path pays
    /// only a branch.
    fn wants_events(&self) -> bool {
        false
    }

    /// A flight-recorder event was emitted. Only called on observers
    /// whose [`wants_events`](Self::wants_events) returns `true`.
    fn on_event(&mut self, event: &radar_obs::Event) {
        let _ = event;
    }

    /// The run finished with event-loop profiling enabled
    /// ([`crate::Simulation::enable_loop_profile`]); called once at
    /// finalization with the accumulated per-handler counters.
    fn on_loop_profile(&mut self, profile: &radar_obs::LoopProfile) {
        let _ = profile;
    }

    /// A sharded run finished; called once at finalization with the
    /// reorder-machinery statistics (reserved sequence numbers, buffer
    /// high-water marks). Never called for serial runs — the stats are
    /// operational metadata, like wall clock, and stay out of the
    /// deterministic event stream.
    fn on_reorder_stats(&mut self, stats: &radar_obs::ReorderStats) {
        let _ = stats;
    }
}

/// A [`radar_obs::Recorder`] is an observer: it subscribes to the event
/// feed and records every event into its ring (and streaming sink, if
/// configured).
impl Observer for radar_obs::Recorder {
    fn wants_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &radar_obs::Event) {
        self.record(event);
    }

    fn on_reorder_stats(&mut self, stats: &radar_obs::ReorderStats) {
        self.set_reorder_stats(*stats);
    }
}

/// A [`radar_obs::SharedRecorder`] is an observer too — attach one
/// clone to the simulation and keep another to read the events back
/// after the run.
impl Observer for radar_obs::SharedRecorder {
    fn wants_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &radar_obs::Event) {
        self.record(event);
    }

    fn on_reorder_stats(&mut self, stats: &radar_obs::ReorderStats) {
        self.set_reorder_stats(*stats);
    }
}

/// A [`radar_obs::MetricsObserver`] subscribes to the event feed and
/// folds every event into its streaming dashboard aggregates.
impl Observer for radar_obs::MetricsObserver {
    fn wants_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &radar_obs::Event) {
        self.fold(event);
    }
}

/// A [`radar_obs::SharedMetrics`] is an observer too — attach one
/// clone to the simulation and read the live aggregates (or the final
/// ones) from another.
impl Observer for radar_obs::SharedMetrics {
    fn wants_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &radar_obs::Event) {
        self.fold(event);
    }
}

/// A [`radar_obs::SharedObjectLedger`] is an observer too — attach one
/// clone to the simulation and read live protocol-health snapshots (or
/// object timelines) from another. [`crate::Simulation::enable_object_ledger`]
/// does exactly this.
impl Observer for radar_obs::SharedObjectLedger {
    fn wants_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &radar_obs::Event) {
        self.fold(event);
    }
}
