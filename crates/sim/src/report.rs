//! Finalized run results and the derived paper metrics.

use radar_stats::{
    adjustment_time, equilibrium_mean, AdjustmentOutcome, EquilibriumSpec, Summary, TimeSeries,
};

use crate::metrics::{LoadEstimateSample, Metrics, RelocationEvent};
use crate::trace::Trace;

/// Replica statistics at one sampling instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaCensus {
    /// Sample time (seconds).
    pub t: f64,
    /// Mean number of physical replicas per object.
    pub avg_replicas: f64,
}

/// The immutable result of one simulation run: every series the paper's
/// figures need plus whole-run aggregates.
///
/// Derived metrics:
/// * [`total_bandwidth_rates`](Self::total_bandwidth_rates) — the Fig. 6
///   bandwidth curve (client + overhead traffic, bytes×hops per second);
/// * [`overhead_fractions`](Self::overhead_fractions) — Fig. 7;
/// * [`adjustment`](Self::adjustment) — Table 2's adjustment time;
/// * [`equilibrium_avg_replicas`](Self::equilibrium_avg_replicas) —
///   Table 2's average replica count.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Selection-policy name.
    pub policy: String,
    /// Placement-policy name (`radar` unless a baseline was swapped in).
    pub placement_policy: String,
    /// Whether dynamic placement ran.
    pub dynamic_placement: bool,
    /// Simulated duration (seconds).
    pub duration: f64,
    /// Requests delivered.
    pub total_requests: u64,
    /// Whole-run latency summary (seconds).
    pub latency: Summary,
    /// Estimated median latency (seconds; P² streaming estimate).
    pub latency_p50: f64,
    /// Estimated 99th-percentile latency (seconds; P² streaming
    /// estimate).
    pub latency_p99: f64,
    /// Response traffic per bin (bytes×hops).
    pub client_bandwidth: TimeSeries,
    /// Relocation traffic per bin (bytes×hops).
    pub overhead_bandwidth: TimeSeries,
    /// Provider-update propagation traffic per bin (bytes×hops, §5).
    pub update_bandwidth: TimeSeries,
    /// Latency samples per bin (means are the Fig. 6 latency curve).
    pub latency_series: TimeSeries,
    /// Maximum host load per measurement interval (Fig. 8a).
    pub max_load: TimeSeries,
    /// Tracked host's load estimates (Fig. 8b).
    pub load_estimates: Vec<LoadEstimateSample>,
    /// Average replicas per object over time (Table 2).
    pub replica_series: Vec<ReplicaCensus>,
    /// Geo-migrations performed.
    pub geo_migrations: u64,
    /// Geo-replications performed.
    pub geo_replications: u64,
    /// Offload migrations performed.
    pub offload_migrations: u64,
    /// Offload replications performed.
    pub offload_replications: u64,
    /// Replicas dropped.
    pub drops: u64,
    /// Affinity units shed without dropping a replica.
    pub affinity_reductions: u64,
    /// Final replica placement: for each object (by index), the
    /// `(node, affinity)` pairs of its replicas at the end of the run.
    pub final_replicas: Vec<Vec<(u16, u32)>>,
    /// Full relocation log (one record per placement action).
    pub relocation_log: Vec<RelocationEvent>,
    /// Per load sample: `(t, node with the maximum load, that load)`.
    pub max_load_host: Vec<(f64, u16, f64)>,
    /// Captured arrival trace, when [`crate::Simulation::record_trace`]
    /// was enabled; replay with [`crate::Simulation::replay`].
    pub trace: Option<Trace>,
    /// Requests handled per redirector, keyed by redirector node (§2:
    /// the load hash-partitioning divides).
    pub redirector_requests: std::collections::BTreeMap<u16, u64>,
    /// Total bytes carried per backbone link over the run, as
    /// `((node_a, node_b), bytes)` — all traffic classes combined.
    pub link_traffic: Vec<((u16, u16), f64)>,
    /// Response traffic between regions: `region_matrix[from][to]` is
    /// bytes×hops served by region `from` to gateways in region `to`
    /// (indexed by `radar_simnet::Region::index`).
    pub region_matrix: [[f64; 4]; 4],
    /// Mean redirect leg of request latency (seconds).
    pub redirect_delay: Summary,
    /// Mean queueing delay at serving hosts (seconds).
    pub queueing_delay: Summary,
    /// Mean response travel time (seconds).
    pub response_travel: Summary,
    /// Provider updates propagated (§5).
    pub updates_propagated: u64,
    /// Provider updates per consistency class: `[type-1, type-2,
    /// type-3]` (§5's taxonomy — primary-copy, commuting,
    /// non-commuting).
    pub updates_by_class: [u64; 3],
    /// Asynchronous update deliveries applied at replicas (type-1 and
    /// type-2 objects).
    pub update_deliveries: u64,
    /// Deliveries that arrived after the target replica had already
    /// been dropped or migrated away.
    pub wasted_deliveries: u64,
    /// Commuting updates merged at type-2 replicas.
    pub updates_merged: u64,
    /// Per-replica staleness (seconds between a type-1 provider update
    /// and its delivery at each secondary replica).
    pub update_lag_type1: Summary,
    /// Per-replica staleness of type-2 (commuting-merge) deliveries.
    pub update_lag_type2: Summary,
    /// Times the primary copy was reassigned after its host shed the
    /// object.
    pub primary_reassignments: u64,
    /// Requests that failed because every candidate replica was crashed
    /// or unreachable (fault injection).
    pub failed_requests: u64,
    /// Requests salvaged by the redirector's primary-copy fallback.
    pub primary_fallbacks: u64,
    /// Replicas recreated by the catalog's re-replication sweep.
    pub re_replications: u64,
    /// Total object-seconds with zero live replicas.
    pub unavailable_object_seconds: f64,
    /// Time to restore objects to their minimum replica count (seconds).
    pub restore_time: Summary,
    /// Fault transitions applied over the run.
    pub faults_injected: u64,
    /// Event-loop profile (per-event-type wall time and queue depth),
    /// when [`crate::Simulation::enable_loop_profile`] was on. Carries
    /// host wall-clock measurements, so it is deliberately excluded
    /// from the JSON report to keep that output deterministic.
    pub loop_profile: Option<radar_obs::LoopProfile>,
    /// Per-shard telemetry of a sharded run (stall attribution,
    /// hand-off histograms, barrier counts), when
    /// [`crate::Simulation::enable_shard_profile`] was on. Unlike
    /// [`loop_profile`](Self::loop_profile) this *is* serialized into
    /// the JSON report — as an explicitly opt-in, wall-clock-bearing
    /// `shard_profile` section that `radar perf` consumes. Reports
    /// from unprofiled runs stay byte-identical.
    pub shard_profile: Option<radar_obs::ShardProfile>,
    /// Protocol-health summary (replica churn, relocation cost, and
    /// invariant-audit verdict), when
    /// [`crate::Simulation::enable_object_ledger`] was on. Serialized
    /// into the JSON report as an opt-in `protocol_health` section;
    /// reports from runs without the ledger stay byte-identical.
    pub protocol_health: Option<radar_obs::ProtocolHealth>,
}

impl RunReport {
    pub(crate) fn from_metrics(
        metrics: Metrics,
        workload: String,
        policy: String,
        placement_policy: String,
        dynamic_placement: bool,
        duration: f64,
    ) -> Self {
        Self {
            workload,
            policy,
            placement_policy,
            dynamic_placement,
            duration,
            total_requests: metrics.total_requests,
            latency: metrics.latency_summary.snapshot(),
            latency_p50: metrics.latency_p50.estimate().unwrap_or(0.0),
            latency_p99: metrics.latency_p99.estimate().unwrap_or(0.0),
            client_bandwidth: metrics.client_bandwidth,
            overhead_bandwidth: metrics.overhead_bandwidth,
            update_bandwidth: metrics.update_bandwidth,
            latency_series: metrics.latency,
            max_load: metrics.max_load,
            load_estimates: metrics.load_estimates,
            replica_series: metrics
                .replica_series
                .into_iter()
                .map(|(t, avg_replicas)| ReplicaCensus { t, avg_replicas })
                .collect(),
            geo_migrations: metrics.geo_migrations,
            geo_replications: metrics.geo_replications,
            offload_migrations: metrics.offload_migrations,
            offload_replications: metrics.offload_replications,
            drops: metrics.drops,
            affinity_reductions: metrics.affinity_reductions,
            final_replicas: Vec::new(),
            relocation_log: metrics.relocation_log,
            max_load_host: metrics.max_load_host,
            trace: None,
            // The hot path keeps a flat per-node vector; the report's
            // sparse map lists only nodes that actually served requests.
            redirector_requests: metrics
                .redirector_requests
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(node, &count)| (node as u16, count))
                .collect(),
            link_traffic: Vec::new(),
            region_matrix: metrics.region_matrix,
            redirect_delay: metrics.redirect_delay.snapshot(),
            queueing_delay: metrics.queueing_delay.snapshot(),
            response_travel: metrics.response_travel.snapshot(),
            updates_propagated: metrics.updates_propagated,
            updates_by_class: metrics.updates_by_class,
            update_deliveries: metrics.update_deliveries,
            wasted_deliveries: metrics.wasted_deliveries,
            updates_merged: metrics.updates_merged,
            update_lag_type1: metrics.update_lag_type1.snapshot(),
            update_lag_type2: metrics.update_lag_type2.snapshot(),
            primary_reassignments: metrics.primary_reassignments,
            failed_requests: metrics.failed_requests,
            primary_fallbacks: metrics.primary_fallbacks,
            re_replications: metrics.re_replications,
            unavailable_object_seconds: metrics.unavailable_object_seconds,
            restore_time: metrics.restore_time.snapshot(),
            faults_injected: metrics.faults_injected,
            loop_profile: None,
            shard_profile: None,
            protocol_health: None,
        }
    }

    /// Fraction of arrived requests that were delivered: `1.0` on a
    /// fault-free run, lower when crashes or partitions made objects
    /// unreachable.
    pub fn availability(&self) -> f64 {
        let attempted = self.total_requests + self.failed_requests;
        if attempted == 0 {
            1.0
        } else {
            self.total_requests as f64 / attempted as f64
        }
    }

    /// Number of fully elapsed metric bins (a trailing partial bin would
    /// bias equilibrium statistics low and is excluded everywhere).
    pub fn complete_bins(&self) -> usize {
        (self.duration / self.client_bandwidth.spec().width()).floor() as usize
    }

    /// Total relocations (migrations + replications).
    pub fn relocations(&self) -> u64 {
        self.geo_migrations
            + self.geo_replications
            + self.offload_migrations
            + self.offload_replications
    }

    /// Total traffic (client + relocation + update) per bin, bytes×hops.
    pub fn total_bandwidth_sums(&self) -> Vec<f64> {
        let n = self
            .client_bandwidth
            .len()
            .max(self.overhead_bandwidth.len())
            .max(self.update_bandwidth.len())
            .min(self.complete_bins());
        (0..n)
            .map(|i| {
                self.client_bandwidth.bin_sum(i)
                    + self.overhead_bandwidth.bin_sum(i)
                    + self.update_bandwidth.bin_sum(i)
            })
            .collect()
    }

    /// Total traffic per bin as a rate (bytes×hops per second) — the
    /// Fig. 6 bandwidth curve.
    pub fn total_bandwidth_rates(&self) -> Vec<f64> {
        let w = self.client_bandwidth.spec().width();
        self.total_bandwidth_sums()
            .into_iter()
            .map(|s| s / w)
            .collect()
    }

    /// Overhead traffic as a fraction of total traffic per bin (Fig. 7).
    /// Bins with no traffic report 0.
    pub fn overhead_fractions(&self) -> Vec<f64> {
        self.total_bandwidth_sums()
            .iter()
            .enumerate()
            .map(|(i, &total)| {
                if total <= 0.0 {
                    0.0
                } else {
                    self.overhead_bandwidth.bin_sum(i) / total
                }
            })
            .collect()
    }

    /// The paper's Table 2 adjustment time over the *total* bandwidth
    /// series, or `None` if the run never settles.
    pub fn adjustment(&self, spec: EquilibriumSpec) -> Option<AdjustmentOutcome> {
        let mut total = self.client_bandwidth.clone();
        total.merge(&self.overhead_bandwidth);
        total.merge(&self.update_bandwidth);
        total.truncate(self.complete_bins());
        adjustment_time(&total, spec)
    }

    /// Equilibrium total bandwidth rate (bytes×hops/second), averaged
    /// over the trailing quarter of the run.
    pub fn equilibrium_bandwidth_rate(&self) -> f64 {
        let mut total = self.client_bandwidth.clone();
        total.merge(&self.overhead_bandwidth);
        total.merge(&self.update_bandwidth);
        total.truncate(self.complete_bins());
        equilibrium_mean(&total, 0.25).unwrap_or(0.0) / total.spec().width()
    }

    /// Bandwidth rate of the first bin (the unadjusted initial
    /// configuration), bytes×hops/second.
    pub fn initial_bandwidth_rate(&self) -> f64 {
        let w = self.client_bandwidth.spec().width();
        (self.client_bandwidth.bin_sum(0) + self.overhead_bandwidth.bin_sum(0)) / w
    }

    /// Mean latency over the trailing quarter of the run (seconds).
    pub fn equilibrium_latency(&self) -> f64 {
        let n = self.latency_series.len().min(self.complete_bins());
        if n == 0 {
            return 0.0;
        }
        let start = n - (n / 4).max(1);
        let (mut sum, mut count) = (0.0, 0u64);
        for i in start..n {
            sum += self.latency_series.bin_sum(i);
            count += self.latency_series.bin_count(i);
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Average replicas per object at equilibrium (mean of the trailing
    /// quarter of the census samples; 1.0 if never sampled — every object
    /// starts with a single replica).
    pub fn equilibrium_avg_replicas(&self) -> f64 {
        if self.replica_series.is_empty() {
            return 1.0;
        }
        let n = self.replica_series.len();
        let start = n - (n / 4).max(1);
        let tail = &self.replica_series[start..];
        tail.iter().map(|c| c.avg_replicas).sum::<f64>() / tail.len() as f64
    }

    /// Peak of the Fig. 8a max-load series (requests/second).
    pub fn peak_load(&self) -> f64 {
        self.max_load
            .sums()
            .iter()
            .zip(self.max_load.counts())
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .fold(0.0, f64::max)
    }

    /// Peak max-load after the warmup prefix of `skip_bins` measurement
    /// intervals (the paper's Fig. 8a discussion separates the initial
    /// hot-spot transient from steady state).
    pub fn peak_load_after(&self, skip_bins: usize) -> f64 {
        (skip_bins..self.max_load.len())
            .filter_map(|i| self.max_load.bin_mean(i))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(client: &[f64], overhead: &[f64]) -> RunReport {
        let mut m = Metrics::new(100.0, 20.0);
        for (i, &v) in client.iter().enumerate() {
            if v > 0.0 {
                m.record_response(i as f64 * 100.0, i as f64 * 100.0, 0.1, v);
            }
        }
        for (i, &v) in overhead.iter().enumerate() {
            if v > 0.0 {
                m.record_overhead(i as f64 * 100.0, v);
            }
        }
        RunReport::from_metrics(
            m,
            "test".into(),
            "radar".into(),
            "radar".into(),
            true,
            800.0,
        )
    }

    #[test]
    fn total_bandwidth_combines_series() {
        let r = report_with(&[100.0, 50.0], &[10.0, 0.0]);
        assert_eq!(r.total_bandwidth_sums(), vec![110.0, 50.0]);
        assert_eq!(r.total_bandwidth_rates(), vec![1.1, 0.5]);
    }

    #[test]
    fn overhead_fraction_zero_when_idle() {
        // Bin 1 carries client traffic only; bin 2 is completely idle.
        let r = report_with(&[100.0, 50.0, 0.0, 10.0], &[25.0, 0.0]);
        let f = r.overhead_fractions();
        assert_eq!(f[0], 0.2);
        assert_eq!(f[1], 0.0);
        assert_eq!(f[2], 0.0);
    }

    #[test]
    fn adjustment_and_equilibrium() {
        let r = report_with(
            &[100.0, 60.0, 11.0, 10.0, 10.0, 10.0, 10.0, 10.0],
            &[0.0; 8],
        );
        let adj = r.adjustment(EquilibriumSpec::default()).unwrap();
        assert_eq!(adj.adjustment_time, 200.0);
        assert!((r.equilibrium_bandwidth_rate() - 0.1).abs() < 1e-12);
        assert_eq!(r.initial_bandwidth_rate(), 1.0);
    }

    #[test]
    fn replica_census_defaults_to_one() {
        let r = report_with(&[1.0], &[0.0]);
        assert_eq!(r.equilibrium_avg_replicas(), 1.0);
    }

    #[test]
    fn peak_load_from_series() {
        let mut m = Metrics::new(100.0, 20.0);
        m.max_load.record(0.0, 95.0);
        m.max_load.record(20.0, 60.0);
        m.max_load.record(40.0, 70.0);
        let r = RunReport::from_metrics(m, "w".into(), "p".into(), "radar".into(), true, 60.0);
        assert_eq!(r.peak_load(), 95.0);
        assert_eq!(r.peak_load_after(1), 70.0);
    }
}
