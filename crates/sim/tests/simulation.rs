//! End-to-end tests of the hosting-platform simulation.
//!
//! These run scaled-down versions of the paper's scenarios (fewer
//! objects, lower request rates, shorter horizons) so they finish in
//! seconds in debug builds while still exercising the full request and
//! placement machinery. The full-scale paper runs live in `radar-bench`.

use radar_sim::{InitialPlacement, PlacementMode, Scenario, Simulation};
use radar_workload::{Regional, Uniform, Workload, ZipfReeds};

/// A scaled-down paper scenario on the UUNET testbed.
fn small_scenario() -> radar_sim::ScenarioBuilder {
    Scenario::builder()
        .num_objects(400)
        .node_request_rate(4.0)
        .duration(420.0)
        .seed(11)
}

fn regional_workload(num_objects: u32) -> Box<dyn Workload + Send> {
    let topo = radar_simnet::builders::uunet();
    Box::new(Regional::new(num_objects, &topo, 0.01, 0.9))
}

#[test]
fn smoke_run_produces_traffic_and_latency() {
    let scenario = small_scenario().duration(120.0).build().unwrap();
    let report = Simulation::new(scenario, Box::new(ZipfReeds::new(400))).run();
    // 53 gateways × 4 req/s × 120 s ≈ 25k requests (minus in-flight tail).
    assert!(
        report.total_requests > 20_000,
        "requests: {}",
        report.total_requests
    );
    assert!(report.latency.mean > 0.0);
    assert!(report.client_bandwidth.total() > 0.0);
    assert!(report.max_load.len() > 3);
    assert!(!report.load_estimates.is_empty());
    assert_eq!(report.workload, "zipf");
    assert_eq!(report.policy, "radar");
}

#[test]
fn identical_seeds_identical_runs() {
    let run = || {
        let scenario = small_scenario().duration(150.0).build().unwrap();
        Simulation::new(scenario, Box::new(ZipfReeds::new(400))).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.client_bandwidth, b.client_bandwidth);
    assert_eq!(a.overhead_bandwidth, b.overhead_bandwidth);
    assert_eq!(a.relocations(), b.relocations());
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let scenario = small_scenario().duration(150.0).seed(seed).build().unwrap();
        Simulation::new(scenario, Box::new(ZipfReeds::new(400))).run()
    };
    let a = run(1);
    let b = run(2);
    // Same arrival count (deterministic arrivals) but different object
    // choices => different traffic patterns.
    assert_ne!(a.client_bandwidth, b.client_bandwidth);
}

#[test]
fn static_placement_never_relocates() {
    let scenario = small_scenario()
        .duration(250.0)
        .placement(PlacementMode::Static)
        .build()
        .unwrap();
    let report = Simulation::new(scenario, regional_workload(400)).run();
    assert_eq!(report.relocations(), 0);
    assert_eq!(report.drops, 0);
    assert!(!report.dynamic_placement);
    assert!((report.equilibrium_avg_replicas() - 1.0).abs() < 1e-9);
}

#[test]
fn dynamic_placement_cuts_regional_bandwidth() {
    // The paper's headline: the regional workload sees the largest
    // bandwidth reduction (90.1% at full scale). At this reduced scale we
    // assert the shape: dynamic placement relocates objects and ends with
    // substantially less backbone traffic than it started with.
    let scenario = small_scenario().build().unwrap();
    let report = Simulation::new(scenario, regional_workload(400)).run();
    assert!(report.relocations() > 0, "no relocations happened");
    let initial = report.initial_bandwidth_rate();
    let equilibrium = report.equilibrium_bandwidth_rate();
    assert!(
        equilibrium < 0.7 * initial,
        "expected ≥30% reduction, initial {initial:.0} → equilibrium {equilibrium:.0}"
    );
    // And it does so with few extra replicas.
    let avg = report.equilibrium_avg_replicas();
    assert!(avg < 4.0, "too many replicas: {avg}");
}

#[test]
fn dynamic_beats_static_on_equilibrium_bandwidth() {
    let dynamic = {
        let scenario = small_scenario().build().unwrap();
        Simulation::new(scenario, regional_workload(400)).run()
    };
    let static_run = {
        let scenario = small_scenario()
            .placement(PlacementMode::Static)
            .build()
            .unwrap();
        Simulation::new(scenario, regional_workload(400)).run()
    };
    assert!(
        dynamic.equilibrium_bandwidth_rate() < static_run.equilibrium_bandwidth_rate(),
        "dynamic {} >= static {}",
        dynamic.equilibrium_bandwidth_rate(),
        static_run.equilibrium_bandwidth_rate()
    );
}

#[test]
fn everywhere_placement_starts_fully_replicated() {
    let scenario = small_scenario()
        .num_objects(50)
        .duration(60.0)
        .placement(PlacementMode::Static)
        .initial_placement(InitialPlacement::Everywhere)
        .build()
        .unwrap();
    let report = Simulation::new(scenario, Box::new(Uniform::new(50))).run();
    assert!((report.equilibrium_avg_replicas() - 53.0).abs() < 1e-9);
}

#[test]
fn dynamic_placement_prunes_needless_replicas() {
    // Start fully replicated under a uniform workload: the deletion
    // threshold should strip most of the needless replicas (the paper's
    // §4 argument for why replicate-everywhere is harmful).
    // 53 gateways × 4 req/s over 200 objects ≈ 0.02 req/s per replica
    // when fully replicated — below the deletion threshold u = 0.03, so
    // the needless replicas are cold and must be stripped.
    // Placement runs are phase-staggered, so allow several full rounds.
    let scenario = small_scenario()
        .num_objects(200)
        .duration(620.0)
        .initial_placement(InitialPlacement::Everywhere)
        .build()
        .unwrap();
    let report = Simulation::new(scenario, Box::new(Uniform::new(200))).run();
    assert!(report.drops > 0, "no replicas were pruned");
    let avg = report.equilibrium_avg_replicas();
    assert!(avg < 15.0, "still {avg} replicas per object");
}

#[test]
fn explicit_placement_respected() {
    // All objects start on node 7.
    let scenario = small_scenario()
        .num_objects(20)
        .duration(60.0)
        .placement(PlacementMode::Static)
        .initial_placement(InitialPlacement::Explicit(vec![vec![7]; 20]))
        .build()
        .unwrap();
    let report = Simulation::new(scenario, Box::new(Uniform::new(20))).run();
    // One replica per object throughout.
    assert!((report.equilibrium_avg_replicas() - 1.0).abs() < 1e-9);
    assert!(report.total_requests > 0);
}

#[test]
fn load_estimates_bracket_actual_at_equilibrium() {
    // Fig. 8b's property: actual load lies between the lower and upper
    // estimates (they coincide with the measurement outside relocation
    // windows).
    let scenario = small_scenario().build().unwrap();
    let report = Simulation::new(scenario, regional_workload(400)).run();
    for s in &report.load_estimates {
        assert!(
            s.lower <= s.actual + 1e-9 && s.actual <= s.upper + 1e-9,
            "estimates do not bracket actual at t={}: {} ≤ {} ≤ {}",
            s.t,
            s.lower,
            s.actual,
            s.upper
        );
    }
}

#[test]
fn poisson_arrivals_run() {
    let scenario = small_scenario()
        .duration(100.0)
        .poisson_arrivals(true)
        .build()
        .unwrap();
    let report = Simulation::new(scenario, Box::new(ZipfReeds::new(400))).run();
    // Poisson with the same mean rate: roughly the same request volume.
    let expected = 53.0 * 4.0 * 100.0;
    assert!((report.total_requests as f64 - expected).abs() < 0.1 * expected);
}

#[test]
fn multiple_redirectors_partition_namespace() {
    let run = |n| {
        let scenario = small_scenario()
            .duration(150.0)
            .num_redirectors(n)
            .build()
            .unwrap();
        Simulation::new(scenario, Box::new(ZipfReeds::new(400)))
    };
    let sim1 = run(1);
    let sim4 = run(4);
    assert_eq!(sim1.redirector_nodes().len(), 1);
    assert_eq!(sim4.redirector_nodes().len(), 4);
    // Both run to completion deterministically.
    let r1 = sim1.run();
    let r4 = sim4.run();
    // Identical arrival streams; only the in-flight tail differs.
    assert!(r1.total_requests.abs_diff(r4.total_requests) < 20);
    // Partitioning only moves control-message latency; data traffic
    // stays in the same ballpark (placement decisions can drift a little
    // with the changed request timing).
    let (t1, t4) = (r1.client_bandwidth.total(), r4.client_bandwidth.total());
    assert!(
        (t1 - t4).abs() / t1 < 0.05,
        "client traffic diverged: {t1} vs {t4}"
    );
}

#[test]
fn provider_updates_propagate_from_primaries() {
    // Replicated objects receive update traffic; a migration-heavy
    // workload forces primary reassignment.
    let scenario = small_scenario().update_rate(5.0).build().unwrap();
    let report = Simulation::new(scenario, regional_workload(400)).run();
    assert!(
        report.updates_propagated > 1_000,
        "{}",
        report.updates_propagated
    );
    assert!(
        report.update_bandwidth.total() > 0.0,
        "replicated objects must generate propagation traffic"
    );
    assert!(
        report.primary_reassignments > 0,
        "regional migration should displace some primaries"
    );
    // Update traffic counts toward the total-bandwidth series.
    let totals = report.total_bandwidth_sums();
    let client: f64 = (0..totals.len())
        .map(|i| report.client_bandwidth.bin_sum(i))
        .sum();
    assert!(totals.iter().sum::<f64>() > client);
}

#[test]
fn updates_without_replicas_cost_nothing() {
    // Static single-replica placement: the primary is the only copy, so
    // propagation moves zero bytes (but updates still occur).
    let scenario = small_scenario()
        .duration(150.0)
        .update_rate(5.0)
        .placement(PlacementMode::Static)
        .build()
        .unwrap();
    let report = Simulation::new(scenario, Box::new(ZipfReeds::new(400))).run();
    assert!(report.updates_propagated > 100);
    assert_eq!(report.update_bandwidth.total(), 0.0);
    assert_eq!(report.primary_reassignments, 0);
}

#[test]
fn zero_update_rate_disables_updates() {
    let scenario = small_scenario().duration(120.0).build().unwrap();
    let report = Simulation::new(scenario, Box::new(ZipfReeds::new(400))).run();
    assert_eq!(report.updates_propagated, 0);
    assert_eq!(report.update_bandwidth.total(), 0.0);
}

#[test]
fn heterogeneous_hosts_attract_load_by_weight() {
    // Double-capacity hosts have proportionally higher watermarks, so
    // offloading and admission steer more replicas (and hence load) to
    // them — the paper's §2 weights extension.
    let mut capacities = vec![200.0; 53];
    for i in (0..53).step_by(2) {
        capacities[i] = 400.0;
    }
    let scenario = small_scenario()
        .num_objects(200)
        .node_request_rate(12.0)
        .node_capacities(capacities.clone())
        .duration(700.0)
        .build()
        .unwrap();
    let report = Simulation::new(scenario, Box::new(ZipfReeds::new(200))).run();
    // Tally final replica mass per capacity class.
    let (mut big, mut small) = (0u64, 0u64);
    for reps in &report.final_replicas {
        for &(node, aff) in reps {
            if capacities[node as usize] > 200.0 {
                big += aff as u64;
            } else {
                small += aff as u64;
            }
        }
    }
    assert!(
        big > small,
        "big hosts should hold more replica mass: {big} vs {small}"
    );
}

#[test]
fn staged_run_equals_one_shot_run() {
    let build = || {
        let scenario = small_scenario().duration(300.0).build().unwrap();
        Simulation::new(scenario, Box::new(ZipfReeds::new(400)))
    };
    let one_shot = build().run();
    let mut staged = build();
    staged.run_until(90.0);
    assert!((staged.now() - 90.0).abs() < 1.0);
    staged.run_until(210.0);
    staged.run_until(10_000.0); // clamps to duration
    let staged = staged.finish();
    assert_eq!(one_shot.total_requests, staged.total_requests);
    assert_eq!(one_shot.client_bandwidth, staged.client_bandwidth);
    assert_eq!(one_shot.relocations(), staged.relocations());
    assert_eq!(one_shot.final_replicas, staged.final_replicas);
}

#[test]
fn mid_run_inspection_exposes_protocol_state() {
    use radar_core::ObjectId;
    use radar_simnet::NodeId;
    let scenario = small_scenario().duration(300.0).build().unwrap();
    let mut sim = Simulation::new(scenario, regional_workload(400));
    sim.run_until(250.0);
    // Every object still has at least one replica, and hosts report
    // sensible measured loads.
    let redirector = sim.redirector();
    assert!((0..400).all(|i| redirector.replica_count(ObjectId::new(i)) >= 1));
    let loads: Vec<f64> = (0..53)
        .map(|i| sim.host(NodeId::new(i)).measured_load())
        .collect();
    assert!(loads.iter().any(|&l| l > 0.0));
    assert!(loads.iter().all(|&l| l < 200.0 + 1e-9));
}

#[test]
fn storage_limits_bound_replica_spread() {
    // Unbounded vs storage-capped hosts under a replication-happy
    // workload: the cap must bound per-host object counts and total
    // replica mass.
    let run = |limit: Option<u32>| {
        let mut builder = small_scenario().num_objects(100).duration(500.0);
        if let Some(l) = limit {
            builder = builder.storage_limit(l);
        }
        let scenario = builder.build().unwrap();
        Simulation::new(scenario, Box::new(Uniform::new(100))).run()
    };
    let free = run(None);
    let capped = run(Some(4));
    // Per-host bound holds: no host ends with more than 4 objects.
    for host in 0..53u16 {
        let held = capped
            .final_replicas
            .iter()
            .filter(|reps| reps.iter().any(|&(n, _)| n == host))
            .count();
        assert!(
            held <= 4,
            "host {host} holds {held} objects despite the cap"
        );
    }
    assert!(
        capped.equilibrium_avg_replicas() <= free.equilibrium_avg_replicas() + 1e-9,
        "cap should not increase replication"
    );
    // Every object still has a home.
    assert!(capped.final_replicas.iter().all(|r| !r.is_empty()));
}

#[test]
fn link_traffic_conserves_bytes_hops() {
    // Σ per-link bytes must equal Σ bytes×hops across every traffic
    // class (each hop of a transfer crosses exactly one link).
    let scenario = small_scenario()
        .duration(300.0)
        .update_rate(2.0)
        .build()
        .unwrap();
    let report = Simulation::new(scenario, regional_workload(400)).run();
    let link_total: f64 = report.link_traffic.iter().map(|&(_, b)| b).sum();
    let class_total = report.client_bandwidth.total()
        + report.overhead_bandwidth.total()
        + report.update_bandwidth.total();
    assert!(
        (link_total - class_total).abs() < 1e-6 * class_total.max(1.0),
        "links {link_total} vs classes {class_total}"
    );
    // Links are the topology's links.
    assert_eq!(
        report.link_traffic.len(),
        radar_simnet::builders::uunet().links().len()
    );
}

#[test]
fn latency_breakdown_components_sum_to_total() {
    let scenario = small_scenario().duration(200.0).build().unwrap();
    let report = Simulation::new(scenario, Box::new(ZipfReeds::new(400))).run();
    let service_time = 1.0 / 200.0; // capacity 200 req/s
    let reconstructed = report.redirect_delay.mean
        + report.queueing_delay.mean
        + service_time
        + report.response_travel.mean;
    assert!(
        (reconstructed - report.latency.mean).abs() < 1e-6,
        "components {reconstructed} vs total {}",
        report.latency.mean
    );
    assert!(report.redirect_delay.mean > 0.0);
    assert!(report.response_travel.mean > 0.0);
}

#[test]
fn observers_receive_every_event_class() {
    use radar_sim::{Observer, RequestRecord};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[derive(Default)]
    struct Counter {
        requests: Arc<AtomicU64>,
        relocations: Arc<AtomicU64>,
        samples: Arc<AtomicU64>,
    }
    impl Observer for Counter {
        fn on_request_served(&mut self, r: &RequestRecord) {
            assert!(r.delivered >= r.entered);
            assert!((r.host as usize) < 53 && (r.gateway as usize) < 53);
            self.requests.fetch_add(1, Ordering::Relaxed);
        }
        fn on_relocation(&mut self, _e: &radar_sim::RelocationEvent) {
            self.relocations.fetch_add(1, Ordering::Relaxed);
        }
        fn on_load_sample(&mut self, _t: f64, _max: f64) {
            self.samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    let (requests, relocations, samples) = (
        Arc::new(AtomicU64::new(0)),
        Arc::new(AtomicU64::new(0)),
        Arc::new(AtomicU64::new(0)),
    );
    let counter = Counter {
        requests: requests.clone(),
        relocations: relocations.clone(),
        samples: samples.clone(),
    };
    let scenario = small_scenario().duration(300.0).build().unwrap();
    let mut sim = Simulation::new(scenario, regional_workload(400));
    sim.attach_observer(Box::new(counter));
    sim.run_until(f64::MAX);
    let report = sim.finish();
    assert_eq!(requests.load(Ordering::Relaxed), report.total_requests);
    assert_eq!(
        relocations.load(Ordering::Relaxed),
        report.relocation_log.len() as u64
    );
    assert_eq!(
        samples.load(Ordering::Relaxed),
        report.max_load.total_count()
    );
}

#[test]
fn latency_percentiles_are_ordered_and_plausible() {
    let scenario = small_scenario().duration(200.0).build().unwrap();
    let report = Simulation::new(scenario, Box::new(ZipfReeds::new(400))).run();
    assert!(report.latency.min <= report.latency_p50 + 1e-9);
    assert!(report.latency_p50 <= report.latency_p99 + 1e-9);
    assert!(report.latency_p99 <= report.latency.max * 1.05);
    // The median sits near the mean for this benign workload.
    assert!((report.latency_p50 - report.latency.mean).abs() < report.latency.mean);
}

#[test]
fn recorded_trace_replays_to_identical_traffic() {
    // Capture a synthetic run's arrival stream, replay it, and get the
    // same client traffic and placement decisions — the trace-driven
    // mode of the paper's companion report.
    let scenario = || small_scenario().duration(250.0).build().unwrap();
    let mut original = Simulation::new(scenario(), Box::new(ZipfReeds::new(400)));
    original.record_trace();
    let original = original.run();
    let trace = original.trace.clone().expect("capture enabled");
    assert!(trace.len() as u64 >= original.total_requests);

    let replayed = Simulation::replay(scenario(), trace).run();
    assert_eq!(replayed.policy, "radar");
    assert_eq!(replayed.workload, "replay");
    assert_eq!(replayed.total_requests, original.total_requests);
    assert_eq!(replayed.client_bandwidth, original.client_bandwidth);
    assert_eq!(replayed.relocations(), original.relocations());
    assert_eq!(replayed.final_replicas, original.final_replicas);
}

#[test]
fn trace_round_trips_through_text() {
    use radar_sim::Trace;
    let scenario = small_scenario()
        .duration(30.0)
        .num_objects(50)
        .build()
        .unwrap();
    let mut sim = Simulation::new(scenario, Box::new(Uniform::new(50)));
    sim.record_trace();
    let report = sim.run();
    let trace = report.trace.expect("capture enabled");
    let text = trace.to_text();
    let reparsed = Trace::from_text(&text).expect("valid serialization");
    assert_eq!(reparsed.len(), trace.len());
    assert_eq!(reparsed.entries()[0].gateway, trace.entries()[0].gateway);
}

#[test]
#[should_panic(expected = "out of range")]
fn replay_rejects_foreign_objects() {
    use radar_sim::{Trace, TraceEntry};
    let scenario = small_scenario().num_objects(10).build().unwrap();
    let trace = Trace::new(vec![TraceEntry {
        t: 0.0,
        gateway: 0,
        object: 99,
    }])
    .unwrap();
    let _ = Simulation::replay(scenario, trace);
}

#[test]
fn redirector_request_counts_partition_fully() {
    let scenario = small_scenario()
        .duration(120.0)
        .num_redirectors(4)
        .build()
        .unwrap();
    let sim = Simulation::new(scenario, Box::new(ZipfReeds::new(400)));
    let homes: Vec<u16> = sim
        .redirector_nodes()
        .iter()
        .map(|n| n.index() as u16)
        .collect();
    let report = sim.run();
    // Every counted redirector is one of the four homes, and together
    // they handled every redirected request.
    assert!(report
        .redirector_requests
        .keys()
        .all(|node| homes.contains(node)));
    let handled: u64 = report.redirector_requests.values().sum();
    assert!(handled >= report.total_requests);
    // With 400 objects hashed over 4 redirectors, no single one should
    // carry more than ~35% of the control load.
    let max = report.redirector_requests.values().copied().max().unwrap();
    assert!(
        (max as f64) < 0.35 * handled as f64,
        "skewed partition: {max} of {handled}"
    );
}

#[test]
fn region_matrix_localizes_under_regional_demand() {
    // At equilibrium the regional workload serves most traffic
    // region-locally: the matrix diagonal share must rise between the
    // static baseline and the dynamic run.
    let run = |mode| {
        let scenario = small_scenario()
            .duration(600.0)
            .placement(mode)
            .build()
            .unwrap();
        Simulation::new(scenario, regional_workload(400)).run()
    };
    let share = |m: &[[f64; 4]; 4]| {
        let total: f64 = m.iter().flatten().sum();
        let diag: f64 = (0..4).map(|i| m[i][i]).sum();
        diag / total.max(1.0)
    };
    let fixed = run(PlacementMode::Static);
    let dynamic = run(PlacementMode::Dynamic);
    // Matrix totals match the client bandwidth series exactly.
    let matrix_total: f64 = dynamic.region_matrix.iter().flatten().sum();
    assert!((matrix_total - dynamic.client_bandwidth.total()).abs() < 1e-6 * matrix_total);
    assert!(
        share(&dynamic.region_matrix) > share(&fixed.region_matrix),
        "dynamic diagonal share {} should exceed static {}",
        share(&dynamic.region_matrix),
        share(&fixed.region_matrix)
    );
}
