//! End-to-end contract of the shard-aware performance telemetry.
//!
//! A profiled multi-shard run must attribute (nearly) all of its wall
//! clock to named span categories on every lane, populate the hand-off
//! histograms, and count every epoch barrier — while a run without
//! `enable_shard_profile` carries no profile section at all and a serial
//! run never collects one.

use radar_sim::{Scenario, Simulation};
use radar_workload::ZipfReeds;

const OBJECTS: u32 = 40;

fn scenario() -> Scenario {
    // 150 s covers one placement round, and a 0.2 Hz provider-update
    // rate guarantees updates, so the barrier counters see more than
    // one cause.
    Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .update_rate(0.2)
        .duration(150.0)
        .seed(42)
        .build()
        .expect("valid scenario")
}

#[test]
fn profiled_sharded_run_attributes_wall_clock_to_named_spans() {
    let mut sim = Simulation::new(scenario(), Box::new(ZipfReeds::new(OBJECTS)));
    let live = sim.enable_shard_profile();
    let report = sim.run_sharded(2);

    let profile = report.shard_profile.as_ref().expect("profile collected");
    assert_eq!(profile.shards, 2);
    assert_eq!(profile.workers.len(), 2);
    assert!(profile.wall_ns > 0);

    // The cursor-based span clock leaves no unattributed gaps beyond
    // the instants between a lane's last charge and the sequencer's
    // final assembly; even on a loaded machine that is far below 5%.
    assert!(
        profile.min_coverage() > 0.95,
        "span coverage {:.1}% below 95%",
        profile.min_coverage() * 100.0
    );

    // Every redirect was deferred exactly once and answered exactly
    // once, so worker items sum to the hand-off count.
    let worker_items: u64 = profile.workers.iter().map(|w| w.items).sum();
    assert!(worker_items > 0, "no redirects were deferred");
    assert_eq!(profile.handoff_ns.count(), worker_items);
    assert!(
        profile.handoff_ns.max() >= profile.handoff_ns.sum() / profile.handoff_ns.count().max(1)
    );

    // Every answered item traveled in exactly one batched reply
    // message, so batch sizes sum to the item count — and a rate-2.0
    // Zipf workload must coalesce at least some runs into real batches.
    assert_eq!(profile.batch_items.sum(), worker_items);
    assert!(profile.batch_items.count() <= worker_items);
    assert!(
        profile.batch_items.max() >= 2,
        "no multi-item batch in a whole profiled run"
    );

    // The sequencer popped every event the workers decided, plus its own.
    assert!(profile.sequencer.items > worker_items);

    // 150 s at a 100 s placement period and 30 s provider updates: at
    // least one barrier of each periodic cause, none from faults.
    use radar_sim::obs::BarrierCause;
    assert!(profile.barriers[BarrierCause::Placement as usize] >= 1);
    assert!(profile.barriers[BarrierCause::ProviderUpdate as usize] >= 1);
    assert_eq!(profile.barriers[BarrierCause::Fault as usize], 0);

    // Workers fill their candidate caches on first touch, then hit.
    let (hits, misses): (u64, u64) = profile
        .workers
        .iter()
        .fold((0, 0), |(h, m), w| (h + w.cache_hits, m + w.cache_misses));
    assert!(misses > 0, "cold caches must record misses");
    assert!(hits > misses, "a Zipf workload must mostly hit the cache");

    // The live handle saw the final snapshot too.
    let snapshot = live.snapshot().expect("published at the final barrier");
    assert_eq!(snapshot.shards, 2);
}

#[test]
fn unprofiled_and_serial_runs_carry_no_profile() {
    let report = Simulation::new(scenario(), Box::new(ZipfReeds::new(OBJECTS))).run_sharded(2);
    assert!(report.shard_profile.is_none());
    assert!(!report.to_json_pretty().contains("shard_profile"));

    // Serial delegation collects nothing even when profiling is on.
    let mut sim = Simulation::new(scenario(), Box::new(ZipfReeds::new(OBJECTS)));
    let live = sim.enable_shard_profile();
    let report = sim.run_sharded(1);
    assert!(report.shard_profile.is_none());
    assert!(live.snapshot().is_none());
}

#[test]
fn profiled_report_json_round_trips_the_section() {
    let mut sim = Simulation::new(scenario(), Box::new(ZipfReeds::new(OBJECTS)));
    sim.enable_shard_profile();
    let report = sim.run_sharded(2);
    let json = report.to_json_pretty();
    for key in [
        "\"shard_profile\"",
        "\"lanes\"",
        "\"sequencer\"",
        "\"worker-0\"",
        "\"worker-1\"",
        "\"channel-wait\"",
        "\"barrier-drain\"",
        "\"handoff_ns\"",
        "\"batch_items\"",
        "\"barriers\"",
        "\"provider-update\"",
    ] {
        assert!(json.contains(key), "report JSON is missing {key}");
    }
}
