//! Observer hook ordering and flight-recorder determinism.
//!
//! The recorder's guarantee is that two identical seeded runs deliver
//! **byte-identical** event sequences — including under a fault
//! schedule — and that multiple observers see every hook in attachment
//! order. Both properties are what make recorded logs diffable across
//! code changes.

use radar_sim::obs::SharedRecorder;
use radar_sim::{FaultSpec, FaultTransition, Observer, RequestRecord, Scenario, Simulation};
use radar_workload::ZipfReeds;
use std::sync::{Arc, Mutex};

const OBJECTS: u32 = 40;

fn scenario(faults: Option<FaultSpec>) -> Scenario {
    // 150 s covers at least one full placement round (period 100 s), so
    // the log contains placement and counts-reset events, not just the
    // request lifecycle.
    let mut builder = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .duration(150.0)
        .seed(23);
    if let Some(spec) = faults {
        builder = builder.faults(spec);
    }
    builder.build().expect("valid scenario")
}

fn faults() -> FaultSpec {
    FaultSpec::new()
        .with_declare_dead_after(20.0)
        .with_min_replicas(2)
        .host_down(5, 40.0, Some(110.0))
        .host_down(12, 60.0, None)
}

fn run_jsonl(faults_spec: Option<FaultSpec>) -> String {
    let recorder = SharedRecorder::new(radar_sim::obs::DEFAULT_CAPACITY);
    let mut sim = Simulation::new(scenario(faults_spec), Box::new(ZipfReeds::new(OBJECTS)));
    sim.attach_observer(Box::new(recorder.clone()));
    let _report = sim.run();
    recorder.to_jsonl()
}

#[test]
fn seeded_runs_emit_byte_identical_event_logs() {
    let a = run_jsonl(None);
    let b = run_jsonl(None);
    assert!(!a.is_empty(), "run recorded no events");
    assert!(a == b, "two identical seeded runs diverged");
    // The log contains the full decision vocabulary, not just arrivals.
    for needle in ["\"type\":\"decision\"", "\"type\":\"placement\""] {
        assert!(a.contains(needle), "log missing {needle}");
    }
}

#[test]
fn seeded_runs_are_byte_identical_under_faults() {
    let a = run_jsonl(Some(faults()));
    let b = run_jsonl(Some(faults()));
    assert!(a == b, "faulted seeded runs diverged");
    for needle in [
        "\"type\":\"fault\"",
        "\"type\":\"re-replication\"",
        "\"cause\":\"purge\"",
    ] {
        assert!(a.contains(needle), "faulted log missing {needle}");
    }
}

/// One `(observer name, hook name, event time)` record.
type HookRecord = (&'static str, &'static str, f64);

/// Tags every hook invocation with the observer's name, into a shared
/// log, so cross-observer ordering is visible.
#[derive(Clone)]
struct HookLogger {
    name: &'static str,
    log: Arc<Mutex<Vec<HookRecord>>>,
}

impl Observer for HookLogger {
    fn on_request_served(&mut self, record: &RequestRecord) {
        self.log
            .lock()
            .unwrap()
            .push((self.name, "served", record.delivered));
    }

    fn on_load_sample(&mut self, t: f64, _max_load: f64) {
        self.log.lock().unwrap().push((self.name, "load", t));
    }

    fn on_fault(&mut self, transition: &FaultTransition) {
        self.log
            .lock()
            .unwrap()
            .push((self.name, "fault", transition.t));
    }

    fn on_loop_profile(&mut self, profile: &radar_sim::obs::LoopProfile) {
        assert!(
            profile.total_events() > 0,
            "profile delivered to observers must not be empty"
        );
        self.log.lock().unwrap().push((self.name, "profile", -1.0));
    }
}

#[test]
fn observers_see_every_hook_in_attachment_order() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let first = HookLogger {
        name: "first",
        log: log.clone(),
    };
    let second = HookLogger {
        name: "second",
        log: log.clone(),
    };
    let mut sim = Simulation::new(scenario(Some(faults())), Box::new(ZipfReeds::new(OBJECTS)));
    sim.attach_observer(Box::new(first));
    sim.attach_observer(Box::new(second));
    sim.enable_loop_profile();
    let _report = sim.run();

    let log = log.lock().unwrap();
    assert!(!log.is_empty(), "no hooks fired");
    // Every hook fires once per observer, and always first-then-second:
    // the log must be an exact alternation of identical (hook, t) pairs.
    assert_eq!(log.len() % 2, 0, "unpaired hook invocation");
    for pair in log.chunks(2) {
        let [(name_a, hook_a, t_a), (name_b, hook_b, t_b)] = pair else {
            unreachable!("chunks(2) on an even-length slice");
        };
        assert_eq!(*name_a, "first", "attachment order violated: {pair:?}");
        assert_eq!(*name_b, "second", "attachment order violated: {pair:?}");
        assert_eq!(
            (hook_a, t_a),
            (hook_b, t_b),
            "observers saw different hooks"
        );
    }
    // The profile hook fired exactly once per observer, at finalization.
    let profiles = log.iter().filter(|(_, hook, _)| *hook == "profile").count();
    assert_eq!(profiles, 2);
    assert_eq!(log[log.len() - 2].1, "profile");
    assert_eq!(log[log.len() - 1].1, "profile");
}
