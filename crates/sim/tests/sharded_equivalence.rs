//! Equivalence guarantees of the sharded parallel event loop.
//!
//! `Simulation::run_sharded` promises that a seeded run's observable
//! outputs — the flight-recorder JSONL stream and the final report — are
//! byte-identical to the serial loop's for **any** fixed shard count,
//! fault-free or faulted. These tests pin that contract, which is what
//! lets `scripts/check.sh` keep diffing the golden seed-42 log at
//! `--shards 1` while CI also exercises multi-shard runs.

use radar_core::{Catalog, ConsistencyMix};
use radar_sim::obs::SharedRecorder;
use radar_sim::{FaultSpec, Scenario, Simulation};
use radar_workload::ZipfReeds;

const OBJECTS: u32 = 40;

fn scenario(faults: Option<FaultSpec>) -> Scenario {
    // 150 s covers at least one full placement round (period 100 s), so
    // the comparison includes epoch barriers, not just the request path.
    let mut builder = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .duration(150.0)
        .seed(42);
    if let Some(spec) = faults {
        builder = builder.faults(spec);
    }
    builder.build().expect("valid scenario")
}

/// The update-traffic variant: provider updates against a write-heavy
/// §5 catalog, so the comparison covers `ProviderUpdate` barriers *and*
/// the asynchronously scheduled `UpdateDeliver` events.
fn scenario_updates() -> Scenario {
    Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .duration(150.0)
        .seed(42)
        .update_rate(0.5)
        .catalog(Catalog::with_mix(
            OBJECTS,
            12 * 1024,
            53,
            ConsistencyMix::WriteHeavy,
        ))
        .build()
        .expect("valid scenario")
}

fn faults() -> FaultSpec {
    FaultSpec::new()
        .with_declare_dead_after(20.0)
        .with_min_replicas(2)
        .host_down(5, 40.0, Some(110.0))
        .host_down(12, 60.0, None)
        .link_down(0, 1, 70.0, Some(90.0))
}

/// Runs one traced simulation and returns `(jsonl, report_json)`.
fn run(faults_spec: Option<FaultSpec>, shards: usize) -> (String, String) {
    run_with_cap(faults_spec, shards, None)
}

/// Like [`run`], forcing a hand-off batch cap (`Some(1)` reproduces the
/// pre-batching one-item-per-message transport).
fn run_with_cap(
    faults_spec: Option<FaultSpec>,
    shards: usize,
    batch_cap: Option<usize>,
) -> (String, String) {
    let recorder = SharedRecorder::new(radar_sim::obs::DEFAULT_CAPACITY);
    let mut sim = Simulation::new(scenario(faults_spec), Box::new(ZipfReeds::new(OBJECTS)));
    sim.set_shard_batch_cap(batch_cap);
    sim.attach_observer(Box::new(recorder.clone()));
    let report = if shards == 0 {
        sim.run() // the serial reference
    } else {
        sim.run_sharded(shards)
    };
    (recorder.to_jsonl(), report.to_json_pretty())
}

/// Strips the `{"type":"reorder",...}` trailer, the one log line that is
/// deliberately outside the determinism contract: reorder-buffer
/// occupancy depends on wall-clock commit timing (how far the
/// opportunistic `try_recv` drain got), so the trailer is operational
/// metadata, present only on multi-shard runs and excluded from the
/// byte-for-byte comparison.
fn strip_reorder_trailer(log: &str) -> String {
    log.lines()
        .filter(|line| !line.starts_with("{\"type\":\"reorder\""))
        .map(|line| format!("{line}\n"))
        .collect()
}

#[test]
fn fault_free_sharded_runs_match_serial_byte_for_byte() {
    let (serial_log, serial_report) = run(None, 0);
    assert!(!serial_log.is_empty(), "serial run recorded no events");
    assert!(
        !serial_log.contains("\"type\":\"reorder\""),
        "serial runs must not emit the reorder trailer"
    );
    // Coprime and >-than-core counts included: 40 objects over 7 shards
    // exercises uneven ranges and a near-empty tail shard.
    for shards in [2, 3, 5, 7] {
        let (log, report) = run(None, shards);
        assert!(
            log.contains("\"type\":\"reorder\""),
            "{shards}-shard run is missing the reorder trailer"
        );
        assert!(
            strip_reorder_trailer(&log) == serial_log,
            "{shards}-shard event log diverged from serial"
        );
        assert!(
            report == serial_report,
            "{shards}-shard report diverged from serial"
        );
    }
}

#[test]
fn batch_cap_extremes_match_serial_byte_for_byte() {
    // The batch cap must be behavior-invisible: forcing one item per
    // message (the pre-batching transport) and leaving runs unbounded
    // must both reproduce the serial stream exactly — batching only
    // changes when outcomes travel, never what they say.
    let (serial_log, serial_report) = run(None, 0);
    for (shards, cap) in [(2, Some(1)), (3, Some(1)), (2, None), (3, None)] {
        let (log, report) = run_with_cap(None, shards, cap);
        assert!(
            strip_reorder_trailer(&log) == serial_log,
            "{shards}-shard cap={cap:?} event log diverged from serial"
        );
        assert!(
            report == serial_report,
            "{shards}-shard cap={cap:?} report diverged from serial"
        );
    }
    // And under faults, where serial windows interleave with batched ones.
    let (serial_log, serial_report) = run(Some(faults()), 0);
    let (log, report) = run_with_cap(Some(faults()), 3, Some(1));
    assert!(
        strip_reorder_trailer(&log) == serial_log,
        "3-shard cap=1 faulted log diverged from serial"
    );
    assert!(
        report == serial_report,
        "3-shard cap=1 faulted report diverged from serial"
    );
}

#[test]
fn faulted_sharded_runs_match_serial_byte_for_byte() {
    let (serial_log, serial_report) = run(Some(faults()), 0);
    assert!(
        serial_log.contains("\"type\":\"fault\""),
        "fault schedule did not fire"
    );
    for shards in [2, 5] {
        let (log, report) = run(Some(faults()), shards);
        assert!(
            strip_reorder_trailer(&log) == serial_log,
            "{shards}-shard faulted log diverged from serial"
        );
        assert!(
            report == serial_report,
            "{shards}-shard faulted report diverged from serial"
        );
    }
}

#[test]
fn update_traffic_sharded_runs_match_serial_byte_for_byte() {
    let run_updates = |shards: usize| {
        let recorder = SharedRecorder::new(radar_sim::obs::DEFAULT_CAPACITY);
        let mut sim = Simulation::new(scenario_updates(), Box::new(ZipfReeds::new(OBJECTS)));
        sim.attach_observer(Box::new(recorder.clone()));
        let report = if shards == 0 {
            sim.run()
        } else {
            sim.run_sharded(shards)
        };
        (recorder.to_jsonl(), report.to_json_pretty())
    };
    let (serial_log, serial_report) = run_updates(0);
    assert!(
        serial_log.contains("\"type\":\"provider-update\""),
        "update traffic did not fire"
    );
    assert!(
        serial_log.contains("\"type\":\"update-delivered\""),
        "no asynchronous delivery reached a replica"
    );
    for shards in [2, 3] {
        let (log, report) = run_updates(shards);
        assert!(
            strip_reorder_trailer(&log) == serial_log,
            "{shards}-shard update-traffic log diverged from serial"
        );
        assert!(
            report == serial_report,
            "{shards}-shard update-traffic report diverged from serial"
        );
    }
}

#[test]
fn fixed_shard_count_is_deterministic() {
    let (a_log, a_report) = run(Some(faults()), 2);
    let (b_log, b_report) = run(Some(faults()), 2);
    assert!(
        strip_reorder_trailer(&a_log) == strip_reorder_trailer(&b_log),
        "two 2-shard seeded runs diverged"
    );
    assert!(a_report == b_report, "two 2-shard seeded reports diverged");
}

#[test]
fn single_shard_delegates_to_the_serial_loop() {
    let (serial_log, serial_report) = run(None, 0);
    let (log, report) = run(None, 1);
    assert!(log == serial_log);
    assert!(report == serial_report);
}
