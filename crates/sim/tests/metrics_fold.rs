//! The streaming metrics fold reproduces the simulator's own report.
//!
//! `radar_obs::MetricsObserver` consumes only the flight-recorder event
//! stream, yet on a fault-free run its end-of-run aggregates must equal
//! the simulator's built-in accounting exactly: served events carry the
//! service-completion time the simulator uses for its bandwidth series
//! and host-load windows, and latency samples arrive in the same order
//! they were recorded. This is what makes `radar simulate --dashboard`
//! and `radar events watch` trustworthy views of a run.

use radar_core::{Catalog, ConsistencyMix};
use radar_sim::obs::{MetricsConfig, SharedMetrics};
use radar_sim::{Scenario, Simulation};
use radar_workload::ZipfReeds;

const OBJECTS: u32 = 40;

#[test]
fn folded_metrics_match_the_end_of_run_report() {
    // 150 s covers a full placement round (period 100 s), so the event
    // stream includes placements, not just the request lifecycle.
    let scenario = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .duration(150.0)
        .seed(23)
        .build()
        .expect("valid scenario");
    let cfg = MetricsConfig {
        object_size: scenario.object_size,
        bandwidth_bin: scenario.metric_bin,
        load_interval: scenario.params.measurement_interval,
        ..MetricsConfig::default()
    };
    let duration = scenario.duration;
    let metrics = SharedMetrics::new(cfg);
    let mut sim = Simulation::new(scenario, Box::new(ZipfReeds::new(OBJECTS)));
    sim.attach_observer(Box::new(metrics.clone()));
    let report = sim.run();
    metrics.finalize(duration);

    metrics.with(|m| {
        assert!(m.served() > 0, "run served no requests");
        assert_eq!(m.served(), report.total_requests);
        assert_eq!(m.failed(), report.failed_requests);
        assert_eq!(m.re_replications(), report.re_replications);

        // Latency: both folds see the same samples in the same order,
        // so the streaming aggregates agree to the last bit.
        let lat = m.latency_summary().snapshot();
        assert_eq!(lat.count, report.latency.count);
        assert_eq!(lat.mean, report.latency.mean);
        assert_eq!(lat.min, report.latency.min);
        assert_eq!(lat.max, report.latency.max);
        assert_eq!(m.latency_p50().unwrap_or(0.0), report.latency_p50);
        assert_eq!(m.latency_p99().unwrap_or(0.0), report.latency_p99);

        // Client bandwidth: served events carry the hop count and the
        // service-completion time the simulator bins by.
        assert_eq!(m.bandwidth().sums(), report.client_bandwidth.sums());
        assert_eq!(m.bandwidth().counts(), report.client_bandwidth.counts());

        // Max measured host load, sampled at every measurement-interval
        // boundary (the Fig. 8a series).
        assert_eq!(m.max_load().sums(), report.max_load.sums());
        assert_eq!(m.max_load().counts(), report.max_load.counts());

        // Placement accounting seen through the event stream.
        let placements: u64 = m.placement_counts().values().sum();
        assert_eq!(
            placements,
            report.geo_migrations
                + report.geo_replications
                + report.offload_migrations
                + report.offload_replications
                + report.drops
                + report.affinity_reductions
        );
    });
}

#[test]
fn folded_update_metrics_match_the_end_of_run_report() {
    // A write-heavy §5 catalog with provider updates enabled: the fold
    // must reproduce the update-traffic accounting — per-class counts,
    // the propagation-bandwidth series, delivery/waste/merge tallies,
    // and the per-class staleness summaries — bit for bit, because the
    // `provider-update` / `update-delivered` events carry the exact
    // byte·hop and lag values the simulator records.
    let scenario = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .duration(150.0)
        .seed(23)
        .update_rate(0.5)
        .catalog(Catalog::with_mix(
            OBJECTS,
            12 * 1024,
            53,
            ConsistencyMix::WriteHeavy,
        ))
        .build()
        .expect("valid scenario");
    let cfg = MetricsConfig {
        object_size: scenario.object_size,
        bandwidth_bin: scenario.metric_bin,
        load_interval: scenario.params.measurement_interval,
        ..MetricsConfig::default()
    };
    let duration = scenario.duration;
    let metrics = SharedMetrics::new(cfg);
    let mut sim = Simulation::new(scenario, Box::new(ZipfReeds::new(OBJECTS)));
    sim.attach_observer(Box::new(metrics.clone()));
    let report = sim.run();
    metrics.finalize(duration);

    metrics.with(|m| {
        assert!(m.updates() > 0, "run issued no provider updates");
        assert_eq!(m.updates(), report.updates_propagated);
        assert_eq!(m.updates_by_class(), report.updates_by_class);
        assert!(
            report.updates_by_class.iter().all(|&n| n > 0),
            "write-heavy mix should exercise all three classes: {:?}",
            report.updates_by_class
        );
        assert_eq!(m.primary_reassignments(), report.primary_reassignments);

        // Asynchronous deliveries (type-1/2 only; type-3 is synchronous).
        assert!(m.update_deliveries() > 0, "no delivery reached a replica");
        assert_eq!(m.update_deliveries(), report.update_deliveries);
        assert_eq!(m.wasted_deliveries(), report.wasted_deliveries);
        assert_eq!(m.updates_merged(), report.updates_merged);

        // Propagation bandwidth, binned by issue time.
        assert_eq!(m.update_bandwidth().sums(), report.update_bandwidth.sums());
        assert_eq!(
            m.update_bandwidth().counts(),
            report.update_bandwidth.counts()
        );

        // Per-replica staleness: both folds stream the same lag samples
        // in delivery order.
        let t1 = m.update_lag_type1().snapshot();
        assert_eq!(t1.count, report.update_lag_type1.count);
        assert_eq!(t1.mean, report.update_lag_type1.mean);
        assert_eq!(t1.min, report.update_lag_type1.min);
        assert_eq!(t1.max, report.update_lag_type1.max);
        let t2 = m.update_lag_type2().snapshot();
        assert_eq!(t2.count, report.update_lag_type2.count);
        assert_eq!(t2.mean, report.update_lag_type2.mean);
        assert_eq!(t2.min, report.update_lag_type2.min);
        assert_eq!(t2.max, report.update_lag_type2.max);
    });
}
