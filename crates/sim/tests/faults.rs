//! Integration tests of the fault-injection layer: graceful degradation
//! must never route a request to a crashed host, faulted runs must stay
//! seed-deterministic, and declared-dead hosts must have their objects
//! re-replicated onto live hosts.

use radar_sim::{
    FaultSpec, FaultTransition, Observer, RequestRecord, RunReport, Scenario, Simulation,
};
use radar_workload::ZipfReeds;
use std::sync::{Arc, Mutex};

const OBJECTS: u32 = 200;

/// Runs a simulation to completion, honouring `RADAR_TEST_SHARDS`: CI
/// re-runs this whole suite with `RADAR_TEST_SHARDS=2` so every fault
/// scenario is also exercised through the sharded event loop (whose
/// output is byte-equivalent to serial, so the assertions are
/// unchanged). Unset or `1`, the serial loop runs as before.
fn run_to_report(sim: Simulation) -> RunReport {
    match std::env::var("RADAR_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(shards) if shards > 1 => sim.run_sharded(shards),
        _ => sim.run(),
    }
}

/// host 5 crashes at t=100 and recovers at t=300; host 12 crashes at
/// t=200 and never comes back (declared dead 30 s later). The catalog
/// is asked to keep every object at two live replicas, so both the
/// declare-dead purge and the recovery sweep must re-replicate.
fn faulted_scenario() -> Scenario {
    Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .duration(600.0)
        .seed(11)
        .faults(
            FaultSpec::new()
                .with_declare_dead_after(30.0)
                .with_min_replicas(2)
                .host_down(5, 100.0, Some(300.0))
                .host_down(12, 200.0, None),
        )
        .build()
        .expect("valid faulted scenario")
}

/// Collects every served request and fault transition for post-hoc
/// assertions.
#[derive(Default)]
struct Recorder {
    served: Vec<RequestRecord>,
    failed: u64,
    transitions: u64,
}

#[derive(Clone, Default)]
struct SharedRecorder(Arc<Mutex<Recorder>>);

impl Observer for SharedRecorder {
    fn on_request_served(&mut self, record: &RequestRecord) {
        self.0.lock().unwrap().served.push(*record);
    }

    fn on_request_failed(
        &mut self,
        _t: f64,
        _object: u32,
        _gateway: u16,
        _reason: radar_sim::FailureReason,
    ) {
        self.0.lock().unwrap().failed += 1;
    }

    fn on_fault(&mut self, _transition: &FaultTransition) {
        self.0.lock().unwrap().transitions += 1;
    }
}

#[test]
fn no_request_is_served_by_a_crashed_host() {
    let recorder = SharedRecorder::default();
    let mut sim = Simulation::new(faulted_scenario(), Box::new(ZipfReeds::new(OBJECTS)));
    sim.attach_observer(Box::new(recorder.clone()));
    let report = run_to_report(sim);

    let state = recorder.0.lock().unwrap();
    assert!(!state.served.is_empty(), "run served no requests at all");
    for r in &state.served {
        // Host 5 is down in [100, 300); host 12 from 200 on. A request
        // entering the platform inside a host's down window can never be
        // served by that host.
        assert!(
            !(r.host == 5 && (100.0..300.0).contains(&r.entered)),
            "request at t={} served by crashed host 5",
            r.entered
        );
        assert!(
            !(r.host == 12 && r.entered >= 200.0),
            "request at t={} served by crashed host 12",
            r.entered
        );
    }
    // down@100, up@300, down@200 = three scheduled transitions.
    assert_eq!(state.transitions, 3);
    assert_eq!(report.faults_injected, 3);
    assert_eq!(report.failed_requests, state.failed);
    // Graceful degradation keeps the success rate high: replicas on
    // live hosts (or the primary fallback) absorb the lost capacity.
    assert!(
        report.availability() > 0.99,
        "availability {} collapsed under two host faults",
        report.availability()
    );
    assert!(report.unavailable_object_seconds > 0.0);
}

#[test]
fn faulted_runs_are_seed_deterministic() {
    let run = || {
        run_to_report(Simulation::new(
            faulted_scenario(),
            Box::new(ZipfReeds::new(OBJECTS)),
        ))
        .to_json_pretty()
    };
    assert_eq!(run(), run(), "same seed and faults must reproduce exactly");
}

#[test]
fn declared_dead_hosts_lose_their_replicas_to_live_hosts() {
    let report = run_to_report(Simulation::new(
        faulted_scenario(),
        Box::new(ZipfReeds::new(OBJECTS)),
    ));
    assert_eq!(report.final_replicas.len(), OBJECTS as usize);
    for (object, replicas) in report.final_replicas.iter().enumerate() {
        assert!(
            !replicas.is_empty(),
            "object {object} ended the run with no replicas"
        );
        assert!(
            replicas.iter().all(|&(host, _)| host != 12),
            "object {object} still lists a replica on the declared-dead host"
        );
    }
    assert!(
        report.re_replications > 0,
        "losing host 12 for good must trigger re-replication"
    );
    assert!(report.restore_time.count > 0);
}

#[test]
fn empty_fault_spec_is_bit_identical_to_no_faults() {
    let base = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .duration(300.0)
        .seed(7);
    let plain = run_to_report(Simulation::new(
        base.clone().build().expect("valid scenario"),
        Box::new(ZipfReeds::new(OBJECTS)),
    ));
    let with_empty = run_to_report(Simulation::new(
        base.faults(FaultSpec::new())
            .build()
            .expect("valid scenario"),
        Box::new(ZipfReeds::new(OBJECTS)),
    ));
    assert_eq!(plain.to_json_pretty(), with_empty.to_json_pretty());
}
