#!/usr/bin/env bash
# Regression-diff the flight-recorder stream against the committed
# golden log: rerun the golden scenario (fixed seed) and require the
# fresh event stream to be byte-identical. Any divergence prints the
# first differing event with its causal chain and exits non-zero.
#
#   scripts/golden-diff.sh           check (used by check.sh and CI)
#   scripts/golden-diff.sh --regen   re-record the golden log after an
#                                    intentional behaviour change
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=tests/golden/events-seed42.jsonl
FRESH=target/golden-fresh.jsonl

run_scenario() {
  # Keep in sync with tests/golden/README.md and
  # crates/cli/tests/golden_diff.rs. Pinned to --shards 1: the golden
  # log is defined by the serial event loop (multi-shard equivalence is
  # covered separately by check.sh's end-state check and the
  # sharded_equivalence integration tests).
  cargo run -q -p radar-cli --bin radar -- simulate \
    --objects 16 --rate 0.05 --duration 150 --seed 42 --shards 1 \
    --events "$1" >/dev/null
}

if [[ "${1:-}" == "--regen" ]]; then
  run_scenario "$GOLDEN"
  echo "regenerated $GOLDEN ($(wc -l <"$GOLDEN") lines)"
  exit 0
fi

mkdir -p target
run_scenario "$FRESH"
cargo run -q -p radar-cli --bin radar -- events diff "$GOLDEN" "$FRESH"
