#!/usr/bin/env bash
# Full repository health check: format, lints, tests, docs, examples.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --check
echo "== clippy (workspace, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings
echo "== tests (debug) =="
cargo test --workspace
echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
echo "== examples build =="
cargo build --release --examples
echo "== benches compile and self-test =="
cargo bench --workspace -- --test
echo "== loop-profile baseline (BENCH_loop.json) =="
cargo bench -q -p radar-bench --bench loop_profile
echo "== throughput baseline + regression gate (BENCH_throughput.json) =="
# Fails on >10% events/sec regression or >10% allocations/event growth
# against the committed baseline, then refreshes it.
cargo bench -q -p radar-bench --bench throughput
echo "== golden event-log regression diff (serial, --shards 1) =="
./scripts/golden-diff.sh
echo "== sharded end-state equivalence (2 shards vs 1) =="
# The sharded loop promises byte-identical observable output for any
# fixed shard count; spot-check it end to end through the CLI by
# comparing the full JSON reports of a 1-shard and a 2-shard run.
mkdir -p target
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 0.05 --duration 150 --seed 42 --shards 1 --json \
  > target/report-shards1.json
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 0.05 --duration 150 --seed 42 --shards 2 --json \
  > target/report-shards2.json
diff target/report-shards1.json target/report-shards2.json \
  || { echo "FAIL: 2-shard report diverged from 1-shard"; exit 1; }
echo "reports identical"
echo "== shard-profile coverage gate (--profile + radar perf) =="
# A profiled sharded run must attribute at least 95% of every lane's
# wall-clock to named spans (busy / waits / barrier / reunite / idle).
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 0.05 --duration 150 --seed 42 --shards 2 --profile \
  --json > target/report-profiled.json
cargo run -q -p radar-cli --bin radar -- perf target/report-profiled.json \
  --check-coverage 95
echo "ALL CHECKS PASSED"
