#!/usr/bin/env bash
# Full repository health check: format, lints, tests, docs, examples.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --check
echo "== clippy (workspace, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings
echo "== tests (debug) =="
cargo test --workspace
echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
echo "== examples build =="
cargo build --release --examples
echo "== benches compile and self-test =="
cargo bench --workspace -- --test
echo "== loop-profile baseline (BENCH_loop.json) =="
cargo bench -q -p radar-bench --bench loop_profile
echo "== throughput baseline + regression gate (BENCH_throughput.json) =="
# Fails on >10% events/sec regression or >10% allocations/event growth
# against the committed baseline, then refreshes it.
cargo bench -q -p radar-bench --bench throughput
echo "== golden event-log regression diff =="
./scripts/golden-diff.sh
echo "ALL CHECKS PASSED"
