#!/usr/bin/env bash
# Full repository health check: format, lints, tests, docs, examples.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --check
echo "== clippy (workspace, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings
echo "== tests (debug) =="
cargo test --workspace
echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
echo "== examples build =="
cargo build --release --examples
echo "== benches compile and self-test =="
cargo bench --workspace -- --test
echo "== loop-profile baseline (BENCH_loop.json) =="
cargo bench -q -p radar-bench --bench loop_profile
echo "== throughput baseline + regression gate (BENCH_throughput.json) =="
# Fails on >10% events/sec regression or >10% allocations/event growth
# against the committed baseline, then refreshes it.
cargo bench -q -p radar-bench --bench throughput
echo "== batched hand-off gate (BENCH_profile.json) =="
# The bench's profiled scaling runs must show a real batched transport:
# every profile records hand-offs and the 2-shard profile's batch-size
# p50 stays at ≥ 2 items per message (1 would mean the hand-off path
# degenerated back to one message per decision).
cargo run -q -p radar-cli --bin radar -- perf BENCH_profile.json \
  --check-batch-p50 2
echo "== golden event-log regression diff (serial, --shards 1) =="
./scripts/golden-diff.sh
echo "== replica-set invariant audit (golden log + faulted 2-shard run) =="
# The paper's correctness contract (notify after create, before
# delete) must hold on the committed golden log and on a faulted
# sharded run — crashes, purges and re-replication are exactly where
# an unnotified drop would slip through. Exit code 2 names the seqs.
mkdir -p target
cargo run -q -p radar-cli --bin radar -- objects audit \
  tests/golden/events-seed42.jsonl
printf 'min-replicas 2\ndeclare-dead-after 30\nhost-down 5 60 180\nhost-down 12 120\n' \
  > target/audit-faults.txt
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 0.05 --duration 150 --seed 42 --shards 2 \
  --faults target/audit-faults.txt --events target/audit-faulted.jsonl \
  >/dev/null
cargo run -q -p radar-cli --bin radar -- objects audit target/audit-faulted.jsonl
echo "== invariant audit of an update-heavy type-1 run =="
# Provider updates against the default (all type-1, primary-copy)
# catalog: the auditor additionally checks that every update is issued
# from a directory-known primary and that every non-wasted delivery
# lands on a host that still holds the replica — the drop/delivery race
# is exactly where stale bookkeeping would surface.
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 0.05 --duration 150 --seed 42 --update-rate 2 \
  --events target/audit-updates.jsonl >/dev/null
grep -q '"type":"provider-update"' target/audit-updates.jsonl \
  || { echo "FAIL: update-heavy run emitted no provider updates"; exit 1; }
cargo run -q -p radar-cli --bin radar -- objects audit target/audit-updates.jsonl
echo "== protocol-health baseline (BENCH_protocol_health.json) =="
# The ledger-enabled golden run is deterministic, so its
# protocol_health report section doubles as a committed churn/audit
# baseline next to the perf baselines.
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 0.05 --duration 150 --seed 42 --ledger --json \
  > target/report-ledger.json
# protocol_health is the report's final section; re-wrapping the tail
# in braces yields a standalone JSON document.
{ echo '{'; sed -n '/^  "protocol_health": {$/,$p' target/report-ledger.json; } \
  > BENCH_protocol_health.json
echo "wrote BENCH_protocol_health.json"
echo "== sharded end-state equivalence (2 shards vs 1) =="
# The sharded loop promises byte-identical observable output for any
# fixed shard count; spot-check it end to end through the CLI by
# comparing the full JSON reports of a 1-shard and a 2-shard run.
mkdir -p target
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 0.05 --duration 150 --seed 42 --shards 1 --json \
  > target/report-shards1.json
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 0.05 --duration 150 --seed 42 --shards 2 --json \
  > target/report-shards2.json
diff target/report-shards1.json target/report-shards2.json \
  || { echo "FAIL: 2-shard report diverged from 1-shard"; exit 1; }
echo "reports identical"
echo "== shard-profile coverage + batch gate (--profile + radar perf) =="
# A profiled sharded run must attribute at least 95% of every lane's
# wall-clock to named spans (busy / waits / barrier / reunite / idle)
# and show a batched hand-off (p50 ≥ 2 items/message). The smoke rate
# is 2 req/s rather than the golden log's 0.05: at 0.05 the simulated
# inter-arrival gap dwarfs every propagation bound, so no two redirects
# can ever share a batch and the batch gate would measure nothing.
cargo run -q -p radar-cli --bin radar -- simulate \
  --objects 16 --rate 2 --duration 150 --seed 42 --shards 2 --profile \
  --json > target/report-profiled.json
cargo run -q -p radar-cli --bin radar -- perf target/report-profiled.json \
  --check-coverage 95 --check-batch-p50 2
echo "== placement-policy sweep (BENCH_policies.json) =="
# Regenerates the placement-policy × consistency-mix head-to-head at
# the unit-test scale and gates on its shape: every placement policy
# must appear under at least the read-only and write-heavy mixes.
cargo run -q --release -p radar-bench --bin experiments -- --tiny policies \
  > /dev/null
for policy in radar availability cluster; do
  grep -q "\"placement\": \"$policy\"" BENCH_policies.json \
    || { echo "FAIL: placement policy $policy missing from sweep"; exit 1; }
done
for mix in read-only mixed write-heavy; do
  grep -q "\"mix\": \"$mix\"" BENCH_policies.json \
    || { echo "FAIL: consistency mix $mix missing from sweep"; exit 1; }
done
echo "BENCH_policies.json covers 3 policies x 3 mixes"
echo "ALL CHECKS PASSED"
