//! Latency SLO monitoring: attach an [`Observer`] to the running
//! platform and track a per-minute p99 latency against a service-level
//! objective — watching the SLO go from violated to met as the protocol
//! dissolves a flash crowd.
//!
//! ```text
//! cargo run --release --example latency_slo
//! ```

use std::sync::{Arc, Mutex};

use radar::sim::{Observer, RequestRecord, Scenario, Simulation};
use radar::simcore::SimRng;
use radar::stats::P2Quantile;
use radar::workload::HotSites;

const SLO_MS: f64 = 400.0;

/// Tracks p99 latency per minute of simulated time; completed minutes
/// are published through a shared handle so the caller can read them
/// after (or during) the run.
struct SloMonitor {
    current_minute: u64,
    current: Option<P2Quantile>,
    /// `(minute, p99_ms, requests)` per completed minute.
    minutes: Arc<Mutex<Vec<(u64, f64, usize)>>>,
}

impl SloMonitor {
    fn new(minutes: Arc<Mutex<Vec<(u64, f64, usize)>>>) -> Self {
        Self {
            current_minute: 0,
            current: None,
            minutes,
        }
    }

    fn roll_to(&mut self, minute: u64) {
        if let Some(q) = self.current.take() {
            if let Some(p99) = q.estimate() {
                self.minutes
                    .lock()
                    .expect("no poisoned locks in a single-threaded run")
                    .push((self.current_minute, p99 * 1e3, q.count()));
            }
        }
        self.current_minute = minute;
    }
}

impl Observer for SloMonitor {
    fn on_request_served(&mut self, r: &RequestRecord) {
        // Delivery timestamps arrive slightly out of order (completion
        // order ≠ delivery order); only roll forward, and fold stragglers
        // into the current minute.
        let minute = (r.delivered / 60.0) as u64;
        if minute > self.current_minute {
            self.roll_to(minute);
        }
        self.current
            .get_or_insert_with(|| P2Quantile::new(0.99))
            .record(r.latency);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A flash crowd: 10% of sites hold 90% of the demand.
    let mut rng = SimRng::seed_from(77);
    let workload = HotSites::new(2_000, 53, 0.1, 0.9, &mut rng);
    let scenario = Scenario::builder()
        .num_objects(2_000)
        .node_request_rate(40.0)
        .duration(2_400.0)
        .seed(6)
        .build()?;

    let minutes = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulation::new(scenario, Box::new(workload));
    sim.attach_observer(Box::new(SloMonitor::new(minutes.clone())));

    println!("simulating a flash crowd with a {SLO_MS:.0} ms p99 SLO…\n");
    let report = sim.run();

    println!("per-minute p99 latency (ms):");
    let minutes = minutes.lock().expect("run finished");
    for (minute, p99, requests) in minutes.iter().step_by(2) {
        let _ = requests;
        let verdict = if *p99 <= SLO_MS {
            "meets SLO"
        } else {
            "VIOLATED"
        };
        let bar = "#".repeat((p99 / 100.0).min(70.0) as usize);
        println!("  min {minute:>3}  {p99:>9.0}  {verdict:<10} {bar}");
    }

    let violated = minutes.iter().filter(|&&(_, p99, _)| p99 > SLO_MS).count();
    println!(
        "\n{violated} of {} minutes violated the SLO (the initial hot-spot phase).",
        minutes.len()
    );
    println!(
        "whole-run: mean {:.0} ms, p50 {:.0} ms, p99 {:.0} ms",
        report.latency.mean * 1e3,
        report.latency_p50 * 1e3,
        report.latency_p99 * 1e3,
    );
    Ok(())
}
