//! Fault injection: a host crashes mid-run and recovers, a second host
//! is lost for good — watch the redirector route around the corpses,
//! the primary absorb orphaned demand, and the catalog re-replicate
//! once the dead host's declare-dead timer fires.
//!
//! ```text
//! cargo run --release --example flaky_hosts
//! ```

use std::sync::{Arc, Mutex};

use radar::sim::{FaultSpec, FaultTransition, Observer, RequestRecord, Scenario, Simulation};
use radar::workload::ZipfReeds;

const OBJECTS: u32 = 2_000;
const DURATION: f64 = 1_200.0;

/// Per-minute served/failed counts plus the fault transitions as they
/// fire, shared with the caller through a handle.
#[derive(Default)]
struct Timeline {
    /// `minutes[m] = (served, failed)`.
    minutes: Vec<(u64, u64)>,
    transitions: Vec<FaultTransition>,
}

impl Timeline {
    fn bump(&mut self, t: f64, failed: bool) {
        let minute = (t / 60.0) as usize;
        if self.minutes.len() <= minute {
            self.minutes.resize(minute + 1, (0, 0));
        }
        let slot = &mut self.minutes[minute];
        if failed {
            slot.1 += 1;
        } else {
            slot.0 += 1;
        }
    }
}

#[derive(Clone, Default)]
struct SharedTimeline(Arc<Mutex<Timeline>>);

impl Observer for SharedTimeline {
    fn on_request_served(&mut self, r: &RequestRecord) {
        self.0.lock().unwrap().bump(r.entered, false);
    }

    fn on_request_failed(
        &mut self,
        t: f64,
        _object: u32,
        _gateway: u16,
        _reason: radar::sim::FailureReason,
    ) {
        self.0.lock().unwrap().bump(t, true);
    }

    fn on_fault(&mut self, transition: &FaultTransition) {
        self.0.lock().unwrap().transitions.push(*transition);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Host 5 crashes at t=300 and is repaired at t=700. Host 12 crashes
    // at t=500 and never comes back; 60 s later the platform declares it
    // dead and re-replicates its objects up to the 2-replica floor.
    let faults = FaultSpec::new()
        .with_declare_dead_after(60.0)
        .with_min_replicas(2)
        .host_down(5, 300.0, Some(700.0))
        .host_down(12, 500.0, None);

    let scenario = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(10.0)
        .duration(DURATION)
        .seed(42)
        .faults(faults)
        .build()?;

    let timeline = SharedTimeline::default();
    let mut sim = Simulation::new(scenario, Box::new(ZipfReeds::new(OBJECTS)));
    sim.attach_observer(Box::new(timeline.clone()));

    println!("simulating {DURATION:.0} s with two host crashes (one fatal)…\n");
    let report = sim.run();

    let timeline = timeline.0.lock().expect("run finished");
    println!("fault transitions:");
    for tr in &timeline.transitions {
        println!("  t={:>6.0}  {:?}", tr.t, tr.kind);
    }

    println!("\nper-minute availability:");
    for (minute, &(served, failed)) in timeline.minutes.iter().enumerate() {
        let total = served + failed;
        let avail = if total == 0 {
            1.0
        } else {
            served as f64 / total as f64
        };
        let bar = "#".repeat((avail * 50.0) as usize);
        println!("  min {minute:>3}  {:>8.4}%  {bar}", avail * 100.0);
    }

    println!(
        "\nwhole-run: {:.4}% availability, {} of {} requests failed",
        report.availability() * 100.0,
        report.failed_requests,
        report.total_requests,
    );
    println!(
        "degradation: {:.1} object-seconds unavailable, {} primary fallbacks",
        report.unavailable_object_seconds, report.primary_fallbacks,
    );
    println!(
        "recovery: {} re-replications, mean {:.1} s to restore the replica floor",
        report.re_replications, report.restore_time.mean,
    );

    // The declared-dead host must hold nothing at the end of the run.
    let on_dead_host = report
        .final_replicas
        .iter()
        .flatten()
        .filter(|&&(host, _)| host == 12)
        .count();
    println!("replicas still on the dead host 12: {on_dead_host}");
    Ok(())
}
