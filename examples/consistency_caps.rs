//! Consistency-limited replication (paper §5): objects whose per-access
//! updates do not commute can keep only a bounded number of replicas —
//! or none beyond the primary at all. This example hosts a mixed catalog
//! with live provider updates and shows the placement policy respecting
//! each class's cap while still replicating the unrestricted objects
//! freely; the update stream demonstrates the semantic split — type-1
//! versions propagate asynchronously (each secondary has a measurable
//! staleness window) while type-3 updates apply synchronously at every
//! copy, so capped objects are never stale.
//!
//! ```text
//! cargo run --release --example consistency_caps
//! ```

use radar::core::{Catalog, ObjectId, ObjectKind};
use radar::sim::{Scenario, Simulation};
use radar::simcore::SimRng;
use radar::simnet::NodeId;
use radar::workload::{Uniform, Workload};

const OBJECTS: u32 = 300;

/// All objects equally popular and hot enough to invite replication.
#[derive(Debug)]
struct HotEverywhere {
    inner: Uniform,
}

impl Workload for HotEverywhere {
    fn choose(&mut self, now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        self.inner.choose(now, gateway, rng)
    }

    fn name(&self) -> &str {
        "hot-everywhere"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-way catalog split:
    //   type 1 (static pages)         → replicate freely,
    //   type 3 relaxed (max 2 copies) → bounded replication,
    //   type 3 strict (single copy)   → migrate-only.
    let kinds: Vec<ObjectKind> = (0..OBJECTS)
        .map(|i| match i % 3 {
            0 => ObjectKind::Immutable,
            1 => ObjectKind::NonCommuting { max_replicas: 2 },
            _ => ObjectKind::NonCommuting { max_replicas: 1 },
        })
        .collect();
    let primaries = (0..OBJECTS).map(|i| NodeId::new((i % 53) as u16)).collect();
    let catalog = Catalog::from_parts(kinds, 12 * 1024, primaries);

    let scenario = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(8.0)
        .duration(1_200.0)
        .catalog(catalog)
        .update_rate(1.0)
        .seed(21)
        .build()?;

    println!("simulating a mixed-consistency catalog ({OBJECTS} objects)…\n");
    let report = Simulation::new(
        scenario,
        Box::new(HotEverywhere {
            inner: Uniform::new(OBJECTS),
        }),
    )
    .run();

    let mut max_replicas = [0usize; 3];
    let mut sum_replicas = [0usize; 3];
    let mut counts = [0usize; 3];
    for i in 0..OBJECTS {
        let class = (i % 3) as usize;
        let n = report.final_replicas[i as usize].len();
        max_replicas[class] = max_replicas[class].max(n);
        sum_replicas[class] += n;
        counts[class] += 1;
    }
    println!("final physical replicas per consistency class:");
    for (class, label) in [
        "type 1 (immutable, uncapped)",
        "type 3 (non-commuting, cap 2)",
        "type 3 (non-commuting, cap 1)",
    ]
    .iter()
    .enumerate()
    {
        println!(
            "  {label:34} avg {:.2}, max {}",
            sum_replicas[class] as f64 / counts[class] as f64,
            max_replicas[class]
        );
    }
    assert!(max_replicas[1] <= 2, "cap-2 objects exceeded their cap");
    assert!(max_replicas[2] <= 1, "cap-1 objects exceeded their cap");
    println!(
        "\ncaps held: bounded objects never exceeded their replica limits, \
         while migration kept them mobile ({} migrations total).",
        report.geo_migrations + report.offload_migrations
    );

    let [t1_updates, _, t3_updates] = report.updates_by_class;
    println!("\nprovider updates ({} total):", report.updates_propagated);
    println!(
        "  type 1: {t1_updates} propagated asynchronously — \
         {} deliveries, mean staleness {:.2} s (max {:.2} s)",
        report.update_deliveries, report.update_lag_type1.mean, report.update_lag_type1.max
    );
    println!(
        "  type 3: {t3_updates} applied synchronously at every copy — \
         zero staleness by construction"
    );
    assert!(t1_updates > 0, "no type-1 updates were issued");
    assert!(t3_updates > 0, "no type-3 updates were issued");
    assert!(
        report.update_lag_type1.count > 0,
        "asynchronous propagation recorded no staleness samples"
    );
    // The catalog has no type-2 objects, and type-3 updates never travel
    // as deferred deliveries, so every staleness sample is type-1.
    assert_eq!(report.update_lag_type2.count, 0);
    Ok(())
}
