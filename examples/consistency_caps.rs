//! Consistency-limited replication (paper §5): objects whose per-access
//! updates do not commute can keep only a bounded number of replicas —
//! or none beyond the primary at all. This example hosts a mixed catalog
//! and shows the protocol respecting each class's cap while still
//! replicating the unrestricted objects freely.
//!
//! ```text
//! cargo run --release --example consistency_caps
//! ```

use radar::core::{Catalog, ObjectId, ObjectKind};
use radar::sim::{Scenario, Simulation};
use radar::simcore::SimRng;
use radar::simnet::NodeId;
use radar::workload::{Uniform, Workload};

const OBJECTS: u32 = 300;

/// All objects equally popular and hot enough to invite replication.
#[derive(Debug)]
struct HotEverywhere {
    inner: Uniform,
}

impl Workload for HotEverywhere {
    fn choose(&mut self, now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
        self.inner.choose(now, gateway, rng)
    }

    fn name(&self) -> &str {
        "hot-everywhere"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-way catalog split:
    //   type 1 (static pages)         → replicate freely,
    //   type 3 relaxed (max 2 copies) → bounded replication,
    //   type 3 strict (single copy)   → migrate-only.
    let kinds: Vec<ObjectKind> = (0..OBJECTS)
        .map(|i| match i % 3 {
            0 => ObjectKind::Immutable,
            1 => ObjectKind::NonCommuting { max_replicas: 2 },
            _ => ObjectKind::NonCommuting { max_replicas: 1 },
        })
        .collect();
    let primaries = (0..OBJECTS).map(|i| NodeId::new((i % 53) as u16)).collect();
    let catalog = Catalog::from_parts(kinds, 12 * 1024, primaries);

    let scenario = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(8.0)
        .duration(1_200.0)
        .catalog(catalog)
        .seed(21)
        .build()?;

    println!("simulating a mixed-consistency catalog ({OBJECTS} objects)…\n");
    let report = Simulation::new(
        scenario,
        Box::new(HotEverywhere {
            inner: Uniform::new(OBJECTS),
        }),
    )
    .run();

    let mut max_replicas = [0usize; 3];
    let mut sum_replicas = [0usize; 3];
    let mut counts = [0usize; 3];
    for i in 0..OBJECTS {
        let class = (i % 3) as usize;
        let n = report.final_replicas[i as usize].len();
        max_replicas[class] = max_replicas[class].max(n);
        sum_replicas[class] += n;
        counts[class] += 1;
    }
    println!("final physical replicas per consistency class:");
    for (class, label) in [
        "type 1 (immutable, uncapped)",
        "type 3 (non-commuting, cap 2)",
        "type 3 (non-commuting, cap 1)",
    ]
    .iter()
    .enumerate()
    {
        println!(
            "  {label:34} avg {:.2}, max {}",
            sum_replicas[class] as f64 / counts[class] as f64,
            max_replicas[class]
        );
    }
    assert!(max_replicas[1] <= 2, "cap-2 objects exceeded their cap");
    assert!(max_replicas[2] <= 1, "cap-1 objects exceeded their cap");
    println!(
        "\ncaps held: bounded objects never exceeded their replica limits, \
         while migration kept them mobile ({} migrations total).",
        report.geo_migrations + report.offload_migrations
    );
    Ok(())
}
