//! Decision audit: capture a run's arrival trace, replay it with the
//! flight recorder attached, and explain one replication decision —
//! the full Fig. 2 table behind a redirector choice and the placement
//! thresholds behind a `geo-replicate`, reconstructed from the event
//! log alone.
//!
//! ```text
//! cargo run --release --example decision_audit
//! ```

use radar::obs::{EventKind, SharedRecorder, DEFAULT_CAPACITY};
use radar::sim::{Scenario, Simulation};
use radar::workload::ZipfReeds;

const OBJECTS: u32 = 40;

fn scenario() -> Result<Scenario, radar::sim::ScenarioError> {
    // Long enough for a full placement round (period 100 s), hot
    // enough (Zipf head) that remote demand triggers geo-replication.
    Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(2.0)
        .duration(150.0)
        .seed(3)
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Run 1: an ordinary run, capturing every arrival as a trace.
    let mut sim = Simulation::new(scenario()?, Box::new(ZipfReeds::new(OBJECTS)));
    sim.record_trace();
    let report = sim.run();
    let trace = report.trace.expect("record_trace was enabled");
    println!(
        "captured {} arrivals; replaying with the flight recorder on…\n",
        trace.len()
    );

    // Run 2: replay the same arrivals with a recorder attached. The
    // recorder is an Observer; keep a clone to read the ring after the
    // run consumes the simulation.
    let recorder = SharedRecorder::new(DEFAULT_CAPACITY);
    let mut replay = Simulation::replay(scenario()?, trace);
    replay.attach_observer(Box::new(recorder.clone()));
    let _ = replay.run();
    let events = recorder.snapshot();
    println!("recorded {} events\n", events.len());

    // Find the first geo-replication the placement algorithm performed.
    let replication = events
        .iter()
        .find(|e| {
            matches!(&e.kind, EventKind::PlacementAction(p)
                if p.action == radar_obs::PlacementActionKind::GeoReplicate)
        })
        .expect("this scenario geo-replicates its hottest objects");
    println!("=== the placement action ===\n{}", replication.explain());

    // Audit the next redirector decision for the replicated object:
    // after the copy exists, the Fig. 2 candidate table shows both
    // replicas and which branch routed the request.
    let object = replication.object().expect("placement events carry one");
    let decision = events
        .iter()
        .find(|e| {
            e.seq > replication.seq
                && e.object() == Some(object)
                && matches!(&e.kind, EventKind::Decision(d) if d.candidates.len() > 1)
        })
        .expect("the replicated object keeps being requested");
    println!(
        "=== the next multi-candidate decision for object {object} ===\n{}",
        decision.explain()
    );

    // The causal chain ties the decision back to its arrival and
    // forward to its outcome.
    if let Some(parent) = decision.parent {
        if let Some(arrival) = events.iter().find(|e| e.seq == parent) {
            println!("caused by:\n  {}", arrival.brief());
        }
    }
    if let Some(outcome) = events.iter().find(|e| e.parent == Some(decision.seq)) {
        println!("led to:\n  {}", outcome.brief());
    }
    Ok(())
}
