//! Quickstart: simulate a small RaDaR hosting platform under a Zipf
//! workload and print what the protocol did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use radar::sim::{Scenario, Simulation};
use radar::workload::ZipfReeds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down version of the paper's Table 1 scenario: the 53-node
    // UUNET-like backbone, 1000 objects of 12 KB, every node a gateway.
    let scenario = Scenario::builder()
        .num_objects(1_000)
        .node_request_rate(10.0)
        .duration(900.0)
        .seed(42)
        .build()?;

    // Object popularity follows Zipf's law (Reeds' closed form).
    let workload = Box::new(ZipfReeds::new(1_000));

    println!("simulating 900s of a 53-node hosting platform…");
    let report = Simulation::new(scenario, workload).run();

    println!("\nrequests delivered : {}", report.total_requests);
    println!(
        "mean latency       : {:.1} ms (min {:.1}, max {:.1})",
        report.latency.mean * 1e3,
        report.latency.min * 1e3,
        report.latency.max * 1e3
    );
    println!(
        "backbone bandwidth : {:.2} MB·hops/s initially → {:.2} MB·hops/s at equilibrium ({:.1}% less)",
        report.initial_bandwidth_rate() / 1e6,
        report.equilibrium_bandwidth_rate() / 1e6,
        (1.0 - report.equilibrium_bandwidth_rate() / report.initial_bandwidth_rate()) * 100.0
    );
    println!(
        "replicas per object: {:.2} on average at equilibrium",
        report.equilibrium_avg_replicas()
    );
    println!(
        "protocol activity  : {} geo-migrations, {} geo-replications, {} offload moves, {} drops",
        report.geo_migrations,
        report.geo_replications,
        report.offload_migrations + report.offload_replications,
        report.drops
    );
    let peak_overhead = report
        .overhead_fractions()
        .into_iter()
        .fold(0.0f64, f64::max);
    println!(
        "relocation overhead: {:.2}% of total traffic at peak",
        peak_overhead * 100.0
    );
    Ok(())
}
