//! Flash crowd: a few sites suddenly hold all the popular content (the
//! paper's *hot-sites* workload), swamping their servers. Watch the
//! protocol dissolve the hot spots by replicating and offloading.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use radar::sim::{PlacementMode, Scenario, Simulation};
use radar::simcore::SimRng;
use radar::workload::HotSites;

const OBJECTS: u32 = 2_000;

fn build_workload() -> HotSites {
    // 10% of the 53 sites are hot and draw 90% of all requests.
    let mut rng = SimRng::seed_from(1234);
    HotSites::new(OBJECTS, 53, 0.1, 0.9, &mut rng)
}

fn run(placement: PlacementMode) -> radar::sim::RunReport {
    let scenario = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(40.0) // full paper rate: hot sites saturate
        .duration(2_500.0)
        .placement(placement)
        .seed(5)
        .build()
        .expect("valid scenario");
    Simulation::new(scenario, Box::new(build_workload())).run()
}

fn main() {
    let workload = build_workload();
    let mut sites: Vec<usize> = workload
        .hot_objects()
        .iter()
        .map(|o| o.index() % 53)
        .collect();
    sites.sort_unstable();
    sites.dedup();
    println!("hot sites: nodes {sites:?} hold the content 90% of clients want");
    println!("server capacity is 200 req/s; the hot sites receive ~350 req/s each.\n");

    println!("running WITHOUT dynamic replication…");
    let frozen = run(PlacementMode::Static);
    println!("running WITH the RaDaR protocol…");
    let dynamic = run(PlacementMode::Dynamic);

    println!("\nmaximum host load over time (requests/sec, capacity 200):");
    println!("{:>8}  {:>10}  {:>10}", "t(s)", "static", "dynamic");
    let s = frozen.max_load.means_filled();
    let d = dynamic.max_load.means_filled();
    for i in (0..s.len().min(d.len())).step_by(10) {
        println!(
            "{:>8.0}  {:>10.1}  {:>10.1}",
            frozen.max_load.spec().bin_start(i),
            s[i],
            d[i]
        );
    }

    println!("\nmean response latency at equilibrium:");
    println!(
        "  static : {:>12.1} ms   (requests queue without bound at the hot sites)",
        frozen.equilibrium_latency() * 1e3
    );
    println!(
        "  dynamic: {:>12.1} ms   ({} replications spread the crowd across the platform)",
        dynamic.equilibrium_latency() * 1e3,
        dynamic.geo_replications + dynamic.offload_replications
    );

    let hw = 90.0;
    let warmup = dynamic.max_load.len() * 2 / 3;
    println!(
        "\nafter adjustment the hottest server runs at {:.0} req/s — {} the {hw:.0} req/s high watermark.",
        dynamic.peak_load_after(warmup),
        if dynamic.peak_load_after(warmup) < hw {
            "below"
        } else {
            "still above"
        }
    );
}
