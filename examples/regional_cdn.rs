//! Regional CDN: every region mostly requests its own content (the
//! paper's *regional* workload), but objects start scattered round-robin
//! across the globe. Watch the protocol pull each region's content home
//! and collapse transoceanic traffic.
//!
//! ```text
//! cargo run --release --example regional_cdn
//! ```

use radar::core::ObjectId;
use radar::sim::{Scenario, Simulation};
use radar::simnet::{builders, NodeId, Region};
use radar::workload::Regional;

const OBJECTS: u32 = 2_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = builders::uunet();
    let workload = Regional::new(OBJECTS, &topo, 0.01, 0.9);

    let scenario = Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(10.0)
        .duration(2_000.0)
        .seed(9)
        .build()?;
    println!("simulating 2000s of regionally skewed demand…\n");
    let report = Simulation::new(scenario, Box::new(workload.clone())).run();

    // Bandwidth trajectory.
    println!("backbone bandwidth (MB·hops/s):");
    let rates = report.total_bandwidth_rates();
    for (i, rate) in rates.iter().enumerate().step_by(2) {
        let t = report.client_bandwidth.spec().bin_start(i);
        let bar = "#".repeat((rate / 1e6).round() as usize);
        println!("  t={t:>5.0}  {:>7.2}  {bar}", rate / 1e6);
    }
    println!(
        "\n{:.1}% of the initial backbone traffic eliminated.",
        (1.0 - report.equilibrium_bandwidth_rate() / report.initial_bandwidth_rate()) * 100.0
    );

    // Where did each region's preferred content end up?
    println!("\nfinal placement of each region's preferred objects:");
    println!(
        "{:>20}  {:>8} {:>8} {:>8} {:>8}",
        "preferred by", "in WNA", "in ENA", "in EU", "in Pac"
    );
    for region in Region::ALL {
        let (start, len) = workload.preferred_slice(region);
        let mut by_region = [0u32; 4];
        for obj in start..start + len {
            for &(node, aff) in &report.final_replicas[ObjectId::new(obj).index()] {
                by_region[topo.region(NodeId::new(node)).index()] += aff;
            }
        }
        println!(
            "{:>20}  {:>8} {:>8} {:>8} {:>8}",
            region.label(),
            by_region[0],
            by_region[1],
            by_region[2],
            by_region[3]
        );
    }
    println!("\n(each row should concentrate on its own column: content followed its consumers)");
    Ok(())
}
