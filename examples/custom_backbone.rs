//! Bring your own backbone: describe a topology in the plain-text spec
//! format (the stand-in for the paper's "routing databases maintained by
//! Internet routers"), replay a measured popularity histogram over it,
//! and watch where the protocol puts things.
//!
//! ```text
//! cargo run --release --example custom_backbone
//! ```

use radar::sim::{Scenario, Simulation};
use radar::simnet::{NodeId, Topology};
use radar::workload::Weighted;

/// A small fictional European ISP: two national rings joined by a pair
/// of trunks, with one stub site hanging off each ring.
const BACKBONE: &str = "
# nodes: name region
node berlin     eu
node hamburg    eu
node munich     eu
node frankfurt  eu
node paris      eu
node lyon       eu
node marseille  eu
node bordeaux   eu
node geneva     eu    # stub off lyon
node rotterdam  eu    # stub off hamburg

# German ring
link berlin hamburg
link hamburg frankfurt
link frankfurt munich
link munich berlin
# French ring
link paris lyon
link lyon marseille
link marseille bordeaux
link bordeaux paris
# trunks and stubs
link frankfurt paris
link munich lyon
link geneva lyon
link rotterdam hamburg
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::from_spec(BACKBONE)?;
    println!(
        "parsed backbone: {} nodes, {} links, diameter {} hops",
        topo.len(),
        topo.links().len(),
        topo.routes().diameter()
    );
    println!("\nGraphviz rendering available via Topology::to_dot():");
    for line in topo.to_dot().lines().take(4) {
        println!("  {line}");
    }
    println!("  …\n");

    // A popularity histogram as you might measure from an access log:
    // a handful of very hot objects and a long uniform tail.
    let num_objects = 200u32;
    let mut weights = vec![1.0f64; num_objects as usize];
    for (i, w) in weights.iter_mut().enumerate().take(8) {
        *w = 200.0 - 20.0 * i as f64;
    }
    let workload = Weighted::new(weights)?;

    let scenario = Scenario::builder()
        .topology(topo.clone())
        .num_objects(num_objects)
        .node_request_rate(25.0)
        .duration(1_200.0)
        .seed(4)
        .build()?;
    println!("simulating 1200s on the custom backbone…");
    let report = Simulation::new(scenario, Box::new(workload)).run();

    println!(
        "\nbandwidth: {:.2} → {:.2} MB·hops/s ({:.0}% reduction), mean latency {:.1} ms",
        report.initial_bandwidth_rate() / 1e6,
        report.equilibrium_bandwidth_rate() / 1e6,
        (1.0 - report.equilibrium_bandwidth_rate() / report.initial_bandwidth_rate()) * 100.0,
        report.latency.mean * 1e3,
    );
    println!("\nwhere the 8 hottest objects ended up:");
    for i in 0..8usize {
        let placement: Vec<String> = report.final_replicas[i]
            .iter()
            .map(|&(node, aff)| {
                let name = topo.name(NodeId::new(node)).to_string();
                if aff > 1 {
                    format!("{name}(×{aff})")
                } else {
                    name
                }
            })
            .collect();
        println!("  object {:>2}: {}", i, placement.join(", "));
    }
    Ok(())
}
