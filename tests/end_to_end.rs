//! Workspace-level integration tests: drive the whole stack through the
//! `radar` facade crate exactly as a downstream user would.

use radar::core::ObjectId;
use radar::sim::{PlacementMode, Scenario, Simulation};
use radar::simnet::{builders, Region};
use radar::workload::{Regional, ZipfReeds};

const OBJECTS: u32 = 400;

fn scenario() -> radar::sim::ScenarioBuilder {
    Scenario::builder()
        .num_objects(OBJECTS)
        .node_request_rate(4.0)
        .duration(500.0)
        .seed(3)
}

#[test]
fn facade_exposes_full_pipeline() {
    let report = Simulation::new(
        scenario().build().expect("valid"),
        Box::new(ZipfReeds::new(OBJECTS)),
    )
    .run();
    assert!(report.total_requests > 50_000);
    assert_eq!(report.final_replicas.len(), OBJECTS as usize);
    // Every object retains at least one replica — the redirector's
    // last-replica protection seen end-to-end.
    assert!(report.final_replicas.iter().all(|r| !r.is_empty()));
}

#[test]
fn regional_content_moves_to_its_region() {
    let topo = builders::uunet();
    let workload = Regional::new(OBJECTS, &topo, 0.01, 0.9);
    let report = Simulation::new(
        scenario().duration(900.0).build().expect("valid"),
        Box::new(workload.clone()),
    )
    .run();

    // For each region, the majority of its preferred objects' replica
    // mass must end up inside that region.
    for region in Region::ALL {
        let (start, len) = workload.preferred_slice(region);
        let mut inside = 0u32;
        let mut total = 0u32;
        for obj in start..start + len {
            for &(node, aff) in &report.final_replicas[ObjectId::new(obj).index()] {
                total += aff;
                if topo.region(radar::simnet::NodeId::new(node)) == region {
                    inside += aff;
                }
            }
        }
        assert!(
            inside * 2 > total,
            "{region}: only {inside}/{total} replica mass is local"
        );
    }
}

#[test]
fn relocation_log_is_consistent_with_counters() {
    let report = Simulation::new(
        scenario().build().expect("valid"),
        Box::new(ZipfReeds::new(OBJECTS)),
    )
    .run();
    use radar::sim::RelocationAction as A;
    let count = |a: A| {
        report
            .relocation_log
            .iter()
            .filter(|e| e.action == a)
            .count() as u64
    };
    assert_eq!(count(A::GeoMigrate), report.geo_migrations);
    assert_eq!(count(A::GeoReplicate), report.geo_replications);
    assert_eq!(count(A::LoadMigrate), report.offload_migrations);
    assert_eq!(count(A::LoadReplicate), report.offload_replications);
    assert_eq!(count(A::Drop), report.drops);
    assert_eq!(count(A::AffinityReduce), report.affinity_reductions);
    // Every relocation with a target names a real node.
    assert!(report
        .relocation_log
        .iter()
        .filter_map(|e| e.target)
        .all(|t| (t as usize) < 53));
}

#[test]
fn overhead_stays_small_fraction_of_traffic() {
    // The paper's Fig. 7 claim, checked end-to-end at test scale: the
    // relocation traffic never dominates.
    let topo = builders::uunet();
    let report = Simulation::new(
        scenario().build().expect("valid"),
        Box::new(Regional::new(OBJECTS, &topo, 0.01, 0.9)),
    )
    .run();
    let peak = report
        .overhead_fractions()
        .into_iter()
        .fold(0.0f64, f64::max);
    assert!(peak < 0.10, "overhead fraction peaked at {peak}");
}

#[test]
fn static_and_dynamic_runs_share_workload_structure() {
    // The same seed must generate the identical request sequence in both
    // modes, so comparisons isolate the placement policy.
    let run = |mode| {
        Simulation::new(
            scenario().placement(mode).build().expect("valid"),
            Box::new(ZipfReeds::new(OBJECTS)),
        )
        .run()
    };
    let dynamic = run(PlacementMode::Dynamic);
    let fixed = run(PlacementMode::Static);
    // Identical arrival streams; only the handful of requests in flight
    // at the cutoff differ (different queueing/routing latencies).
    let diff = dynamic.total_requests.abs_diff(fixed.total_requests);
    assert!(
        diff * 1000 < fixed.total_requests,
        "request volumes diverged: {} vs {}",
        dynamic.total_requests,
        fixed.total_requests
    );
}
