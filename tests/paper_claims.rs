//! The paper's §3 worked examples and headline protocol claims, verified
//! end-to-end at test scale.

use radar::core::{ObjectId, Params, Redirector};
use radar::sim::{Scenario, Simulation};
use radar::simcore::SimRng;
use radar::simnet::{builders, NodeId};
use radar::workload::{Uniform, Workload};

/// §3's America/Europe example, part 1: with balanced demand, every
/// request is served by its local replica.
#[test]
fn balanced_two_continent_demand_served_locally() {
    let topo = builders::two_continents();
    let routes = topo.routes();
    let mut redirector = Redirector::new(1, Params::paper().distribution_constant);
    let x = ObjectId::new(0);
    redirector.install(x, NodeId::new(0));
    redirector.install(x, NodeId::new(1));
    for i in 0..1000 {
        let gw = NodeId::new(i % 2);
        assert_eq!(redirector.choose_replica(x, gw, &routes), Some(gw));
    }
}

/// §3, part 2: one-sided demand sheds one third of the load to the
/// remote replica — the protocol's load sharing without load knowledge.
#[test]
fn one_sided_demand_sheds_a_third() {
    let topo = builders::two_continents();
    let routes = topo.routes();
    let mut redirector = Redirector::new(1, 2.0);
    let x = ObjectId::new(0);
    redirector.install(x, NodeId::new(0));
    redirector.install(x, NodeId::new(1));
    let n = 6000;
    let remote = (0..n)
        .filter(|_| redirector.choose_replica(x, NodeId::new(0), &routes) == Some(NodeId::new(1)))
        .count();
    let frac = remote as f64 / n as f64;
    assert!((frac - 1.0 / 3.0).abs() < 0.02, "remote share {frac}");
}

/// The paper's central §3 claim, end-to-end: a server swamped by
/// requests from its own vicinity sheds load under the protocol, which
/// closest-replica routing can never do.
#[test]
fn swamped_server_sheds_local_overload() {
    #[derive(Debug)]
    struct Swamp {
        uniform: Uniform,
    }
    impl Workload for Swamp {
        fn choose(&mut self, now: f64, gateway: NodeId, rng: &mut SimRng) -> ObjectId {
            // Gateway 5's clients hammer objects 0..20 (hosted on node 5
            // via round-robin? no — explicit below); others browse.
            if gateway == NodeId::new(5) && rng.chance(0.95) {
                ObjectId::new(rng.index(20) as u32)
            } else {
                self.uniform.choose(now, gateway, rng)
            }
        }
        fn name(&self) -> &str {
            "swamp"
        }
    }

    let objects = 400u32;
    let mut rates = vec![4.0; 53];
    rates[5] = 160.0;
    let mut placement: Vec<Vec<u16>> = (0..objects).map(|i| vec![(i % 53) as u16]).collect();
    for assignment in placement.iter_mut().take(20) {
        *assignment = vec![5];
    }
    let scenario = Scenario::builder()
        .num_objects(objects)
        .node_request_rates(rates)
        .initial_placement(radar::sim::InitialPlacement::Explicit(placement))
        .duration(1_500.0)
        .tracked_host(5)
        .seed(17)
        .build()
        .expect("valid scenario");
    let report = Simulation::new(
        scenario,
        Box::new(Swamp {
            uniform: Uniform::new(objects),
        }),
    )
    .run();

    let first = report
        .load_estimates
        .iter()
        .find(|s| s.actual > 0.0)
        .unwrap();
    let last = report.load_estimates.last().unwrap();
    assert!(
        first.actual > 140.0,
        "node 5 should start swamped, got {}",
        first.actual
    );
    assert!(
        last.actual < 100.0,
        "node 5 should shed below ~hw, still at {}",
        last.actual
    );
    // The shedding happened through replication of the hot objects.
    let hot_replicas: usize = (0..20).map(|i| report.final_replicas[i].len()).sum();
    assert!(
        hot_replicas > 25,
        "hot objects only have {hot_replicas} replicas"
    );
}

/// Theorem 5's run-time guarantee: with the paper's `4u < m` constraint,
/// a full simulation never cycles an object through replicate→delete in
/// consecutive epochs on the same host pair.
#[test]
fn no_replicate_delete_cycles() {
    use radar::sim::RelocationAction as A;
    let scenario = Scenario::builder()
        .num_objects(400)
        .node_request_rate(4.0)
        .duration(900.0)
        .seed(23)
        .build()
        .expect("valid");
    let topo = builders::uunet();
    let report = Simulation::new(
        scenario,
        Box::new(radar::workload::Regional::new(400, &topo, 0.01, 0.9)),
    )
    .run();
    // For each (object, target) replication, check the target does not
    // drop that object at its own next placement run (within one period
    // plus stagger slack).
    let mut cycles = 0;
    for e in &report.relocation_log {
        if e.action != A::GeoReplicate && e.action != A::LoadReplicate {
            continue;
        }
        let target = e.target.expect("replications have targets");
        let cycle = report.relocation_log.iter().any(|d| {
            d.action == A::Drop
                && d.object == e.object
                && d.host == target
                && d.t > e.t
                && d.t <= e.t + 220.0
        });
        if cycle {
            cycles += 1;
        }
    }
    let total = report.geo_replications + report.offload_replications;
    assert!(
        (cycles as f64) <= (total as f64) * 0.02,
        "{cycles} of {total} replications were dropped within two epochs"
    );
}
