//! # RaDaR — dynamic object replication and migration
//!
//! A from-scratch Rust reproduction of *"A Dynamic Object Replication
//! and Migration Protocol for an Internet Hosting Service"* (Rabinovich,
//! Rabinovich, Rajaraman, Aggarwal; ICDCS 1999): the protocol, every
//! substrate it needs, the paper's full evaluation harness, and
//! comparator baselines. This facade crate re-exports the workspace so
//! downstream code can depend on one name.
//!
//! ## Layout
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `radar-core` | **The protocol**: the redirector's request distribution algorithm (Fig. 2), per-host placement state and the `DecidePlacement`/`CreateObj`/`Offload` algorithms (Figs. 3–5), the Theorem 1–5 load bounds, and the §5 consistency catalog |
//! | [`sim`] | `radar-sim` | Event-driven hosting-platform simulation: request lifecycle, relocation/update traffic accounting, trace capture & replay, observers, metrics and reports |
//! | [`obs`] | `radar-obs` | Flight recorder: typed decision events with causal parents, bounded ring-buffer recorder with JSONL export, event-loop profiling |
//! | [`simnet`] | `radar-simnet` | Backbone topologies (incl. the 53-node UUNET-like testbed), deterministic shortest-path routing, preference paths, topology spec files |
//! | [`simcore`] | `radar-simcore` | Discrete-event engine: integer clock, event queue, FIFO servers, timers, seeded RNG |
//! | [`workload`] | `radar-workload` | The paper's synthetic workloads plus mixtures, shifts, weighted (trace-derived) popularity, arrival processes |
//! | [`baselines`] | `radar-baselines` | Round-robin / closest-replica / random distribution policies |
//! | [`stats`] | `radar-stats` | Time series, streaming summaries and quantiles, the adjustment-time metric |
//!
//! ## Example
//!
//! Simulate the paper's platform under a Zipf workload and inspect what
//! the protocol did:
//!
//! ```
//! use radar::sim::{Scenario, Simulation};
//! use radar::workload::ZipfReeds;
//!
//! let scenario = Scenario::builder()
//!     .num_objects(200)
//!     .node_request_rate(2.0)
//!     .duration(120.0)
//!     .build()?;
//! let report = Simulation::new(scenario, Box::new(ZipfReeds::new(200))).run();
//! assert!(report.total_requests > 0);
//! println!(
//!     "replicas/object at equilibrium: {:.2}",
//!     report.equilibrium_avg_replicas()
//! );
//! # Ok::<(), radar::sim::ScenarioError>(())
//! ```
//!
//! The protocol state machines in [`core`] are sans-I/O and can be
//! driven without the simulator; see `radar_core::placement::PlacementEnv`.
//!
//! See README.md for the experiment harness that regenerates every
//! table and figure of the paper, and EXPERIMENTS.md for the measured
//! results.

#![forbid(unsafe_code)]

pub use radar_baselines as baselines;
pub use radar_core as core;
pub use radar_obs as obs;
pub use radar_sim as sim;
pub use radar_simcore as simcore;
pub use radar_simnet as simnet;
pub use radar_stats as stats;
pub use radar_workload as workload;
